package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lgvoffload/internal/store"
)

// fakePagedTrace upgrades fakeTrace with paging.
type fakePagedTrace struct {
	fakeTrace
	pages []string // recorded (after, limit) calls
}

func (f *fakePagedTrace) WriteJSONLPage(w io.Writer, after uint64, limit int) (int, error) {
	f.pages = append(f.pages, fmt.Sprintf("%d/%d", after, limit))
	n := 0
	for id := after + 1; id <= uint64(f.n) && n < limit; id++ {
		fmt.Fprintf(w, "{\"id\":%d}\n", id)
		n++
	}
	return n, nil
}

func testStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(filepath.Join(t.TempDir(), "m.lgvstore"))
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	rec, err := s.Begin(store.MissionStart{Seed: 42, Workload: "navigation"})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for i := 0; i < 25; i++ {
		rec.Tick(store.Tick{T: float64(i) * 0.2, VDP: 0.1 + float64(i%5)*0.02, EnergyJ: float64(i)})
	}
	rec.Decision(store.Decision{T: 1, Reason: "alg2", From: "lgv", To: "edge"})
	rec.SpanRow(store.SpanRow{T: 0.2, Makespan: 0.1, Compute: 0.07, Transport: 0.03})
	if err := rec.Finish(store.MissionEnd{Success: true, Reason: "goal", TotalTime: 5,
		Energy: map[string]float64{"compute": 3}, TotalEnergy: 3}); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return s
}

func TestInspectorDashboardRoutes(t *testing.T) {
	s := testStore(t)
	tel := NewTelemetry(64)
	hub := NewLiveHub(0)
	tel.Tee(hub)
	srv := httptest.NewServer(NewInspectorWith(InspectorConfig{
		Telemetry: tel, Trace: &fakeTrace{n: 1}, Store: s, Live: hub,
	}))
	defer srv.Close()
	defer hub.Close()

	code, body := get(t, srv, "/missions")
	if code != 200 || !strings.Contains(body, `"m1"`) {
		t.Errorf("/missions: %d %q", code, body)
	}
	var list []store.MissionInfo
	if err := json.Unmarshal([]byte(body), &list); err != nil || len(list) != 1 {
		t.Errorf("/missions decode: %v len=%d", err, len(list))
	}

	code, body = get(t, srv, "/missions?outcome=failure")
	if code != 200 || strings.Contains(body, `"m1"`) {
		t.Errorf("/missions filtered: %d %q", code, body)
	}

	code, body = get(t, srv, "/missions/m1")
	if code != 200 {
		t.Fatalf("/missions/m1: %d %q", code, body)
	}
	var md store.MissionData
	if err := json.Unmarshal([]byte(body), &md); err != nil {
		t.Fatalf("/missions/m1 decode: %v", err)
	}
	if len(md.Ticks) != 25 || len(md.Decisions) != 1 || len(md.Spans) != 1 {
		t.Errorf("/missions/m1 contents: ticks=%d dec=%d spans=%d",
			len(md.Ticks), len(md.Decisions), len(md.Spans))
	}

	code, _ = get(t, srv, "/missions/nope")
	if code != 404 {
		t.Errorf("/missions/nope: %d, want 404", code)
	}

	code, body = get(t, srv, "/fleet")
	if code != 200 || !strings.Contains(body, `"vdp_p99"`) {
		t.Errorf("/fleet: %d %q", code, body)
	}
	var fl store.Fleet
	if err := json.Unmarshal([]byte(body), &fl); err != nil || fl.Missions != 1 || fl.VDPP99 <= 0 {
		t.Errorf("/fleet decode: %v %+v", err, fl)
	}

	code, body = get(t, srv, "/dash")
	if code != 200 || !strings.Contains(body, "lgvoffload fleet") {
		t.Errorf("/dash: %d", code)
	}

	code, body = get(t, srv, "/")
	if code != 200 || !strings.Contains(body, "1 missions") {
		t.Errorf("index with store: %d %q", code, body)
	}
}

func TestInspectorDashboardDisabled(t *testing.T) {
	srv := httptest.NewServer(NewInspector(nil, nil))
	defer srv.Close()
	for _, path := range []string{"/missions", "/missions/m1", "/fleet", "/live"} {
		if code, _ := get(t, srv, path); code != 404 {
			t.Errorf("%s without store/hub: %d, want 404", path, code)
		}
	}
}

func TestTimelinePaging(t *testing.T) {
	tel := NewTelemetry(4096)
	for i := 0; i < 500; i++ {
		tel.Emit(Event{Kind: KindTick, T0: float64(i)})
	}
	srv := httptest.NewServer(NewInspector(tel, nil))
	defer srv.Close()

	countLines := func(body string) int {
		return len(strings.Fields(strings.ReplaceAll(strings.TrimSpace(body), "\n", " ")))
	}

	// Default: bounded tail.
	_, body := get(t, srv, "/timeline")
	if n := strings.Count(body, "\n"); n != DefaultTimelineLimit {
		t.Errorf("default page: %d lines, want %d", n, DefaultTimelineLimit)
	}
	// Explicit limit.
	_, body = get(t, srv, "/timeline?limit=10")
	if n := strings.Count(body, "\n"); n != 10 {
		t.Errorf("limit=10: %d lines", n)
	}
	// Legacy ?n alias still works.
	_, body = get(t, srv, "/timeline?n=7")
	if n := strings.Count(body, "\n"); n != 7 {
		t.Errorf("n=7: %d lines", n)
	}
	// Cursor paging walks forward from a seq.
	_, body = get(t, srv, "/timeline?after=490&limit=100")
	if n := strings.Count(body, "\n"); n != 10 {
		t.Errorf("after=490: %d lines, want 10", n)
	}
	if !strings.Contains(body, `"seq":491`) || strings.Contains(body, `"seq":490,`) {
		t.Errorf("after=490 page contents wrong: %q", body[:min(len(body), 200)])
	}
	// Cursor past the end: empty page.
	_, body = get(t, srv, "/timeline?after=500")
	if countLines(body) != 0 {
		t.Errorf("after=500: %q, want empty", body)
	}
}

func TestSpansPaging(t *testing.T) {
	tr := &fakePagedTrace{fakeTrace: fakeTrace{n: 2500}}
	srv := httptest.NewServer(NewInspector(nil, tr))
	defer srv.Close()

	_, body := get(t, srv, "/spans")
	if n := strings.Count(body, "\n"); n != DefaultSpanLimit {
		t.Errorf("default spans page: %d lines, want %d", n, DefaultSpanLimit)
	}
	_, body = get(t, srv, "/spans?after=2490&limit=100")
	if n := strings.Count(body, "\n"); n != 10 {
		t.Errorf("after=2490: %d lines, want 10", n)
	}
	if !strings.Contains(body, `{"id":2491}`) {
		t.Errorf("page start wrong: %q", body[:min(len(body), 120)])
	}
	// A non-paged TraceSource still dumps everything (interface upgrade
	// is optional).
	srv2 := httptest.NewServer(NewInspector(nil, &fakeTrace{n: 3}))
	defer srv2.Close()
	code, _ := get(t, srv2, "/spans?limit=1")
	if code != 200 {
		t.Errorf("unpaged fallback: %d", code)
	}
}

func TestLiveHubSSE(t *testing.T) {
	tel := NewTelemetry(64)
	hub := NewLiveHub(8)
	tel.Tee(hub)
	defer hub.Close()
	srv := httptest.NewServer(NewInspectorWith(InspectorConfig{Telemetry: tel, Live: hub}))
	defer srv.Close()

	// Events emitted before the client connects arrive via replay.
	tel.Watchdog(1.5, 0.6)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/live", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("GET /live: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	lines := bufio.NewScanner(resp.Body)
	read := func() string {
		for lines.Scan() {
			if l := lines.Text(); l != "" {
				return l
			}
		}
		t.Fatalf("stream ended early: %v", lines.Err())
		return ""
	}
	if l := read(); l != "event: hello" {
		t.Fatalf("first frame %q, want hello", l)
	}
	read() // hello data
	if l := read(); l != "event: watchdog_stop" {
		t.Fatalf("replay frame %q, want watchdog_stop", l)
	}
	read() // watchdog data

	// A live event published after subscribing arrives too.
	tel.Failover(2.0, 3, "remote -> local")
	if l := read(); l != "event: failover" {
		t.Fatalf("live frame %q, want failover", l)
	}
	if l := read(); !strings.Contains(l, `"failover"`) {
		t.Fatalf("failover data %q", l)
	}
}

// TestInspectorConcurrentScrape hammers every read route while a
// mission writer is emitting telemetry, spans and store records — the
// live-dashboard usage pattern. Run under -race (make check does) to
// verify the locking of every source the inspector reads.
func TestInspectorConcurrentScrape(t *testing.T) {
	s := testStore(t)
	tel := NewTelemetry(256)
	hub := NewLiveHub(0)
	tel.Tee(hub)
	defer hub.Close()
	srv := httptest.NewServer(NewInspectorWith(InspectorConfig{
		Telemetry: tel, Trace: &fakeTrace{n: 2}, Store: s, Live: hub,
	}))
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(2)
	// Writers sleep briefly each iteration: the point is interleaving
	// with the scrapers, not throughput — an unyielding spin starves the
	// reader goroutines under the race detector.
	go func() { // telemetry writer (the mission engine)
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			now := float64(i) * 0.2
			tel.TickSpan(now, now+0.2, 0.1)
			tel.Alg2(now, 40, 1.5, i%2 == 0)
			tel.NodeExec("planner", "edge", now, 0.03, 4)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	go func() { // store writer (a second mission recording)
		defer writers.Done()
		rec, err := s.Begin(store.MissionStart{Seed: 43})
		if err != nil {
			t.Error(err)
			return
		}
		i := 0
		for {
			select {
			case <-stop:
				rec.Finish(store.MissionEnd{Success: true, TotalTime: float64(i),
					Energy: map[string]float64{}, TotalEnergy: 1})
				return
			default:
				rec.Tick(store.Tick{T: float64(i) * 0.2, VDP: 0.1})
				i++
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	routes := []string{"/", "/metrics", "/timeline", "/timeline?after=5&limit=50",
		"/spans", "/missions", "/missions/m1", "/fleet"}
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 40; i++ {
				path := routes[i%len(routes)]
				resp, err := srv.Client().Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("GET %s: %d", path, resp.StatusCode)
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
