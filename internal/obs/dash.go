package obs

// dashHTML is the minimal single-file fleet dashboard served at /dash.
// It is deliberately dependency-free (no frameworks, no CDN): plain
// fetch() against /missions, /missions/{id} and /fleet, an EventSource
// on /live, and inline SVG sparklines for the tick series and the
// critical-path waterfall.
const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>lgvoffload fleet</title>
<style>
 body{font:13px/1.45 system-ui,sans-serif;margin:0;background:#10141a;color:#d7dce2}
 header{padding:10px 16px;background:#161c26;display:flex;gap:24px;align-items:baseline}
 header h1{font-size:15px;margin:0;color:#7fd1b9}
 header span{color:#8a93a1}
 main{display:grid;grid-template-columns:minmax(340px,1fr) 2fr;gap:12px;padding:12px}
 section{background:#161c26;border-radius:6px;padding:10px 12px;overflow:auto}
 h2{font-size:12px;text-transform:uppercase;letter-spacing:.08em;color:#8a93a1;margin:2px 0 8px}
 table{border-collapse:collapse;width:100%}
 td,th{padding:3px 8px;text-align:left;white-space:nowrap}
 th{color:#8a93a1;font-weight:normal;border-bottom:1px solid #2a3240}
 tr.m{cursor:pointer}
 tr.m:hover{background:#1d2533}
 .ok{color:#7fd1b9}.bad{color:#e07b7b}.run{color:#e0c97b}
 #fleet b{color:#d7dce2;font-weight:600}
 #fleet div{margin:2px 0}
 svg{display:block;margin:4px 0;background:#10141a;border-radius:4px}
 #livelog{font:11px/1.5 ui-monospace,monospace;max-height:200px;overflow:auto;color:#8a93a1}
 #livelog .k{color:#7fa6d1}
</style>
</head>
<body>
<header><h1>lgvoffload fleet</h1><span id="status">loading…</span></header>
<main>
 <section>
  <h2>Missions <small>(click one)</small></h2>
  <table id="missions"><thead><tr>
   <th>id</th><th>seed</th><th>workload</th><th>outcome</th><th>time&nbsp;s</th><th>p99&nbsp;VDP&nbsp;s</th><th>energy&nbsp;J</th>
  </tr></thead><tbody></tbody></table>
  <h2>Fleet</h2><div id="fleet"></div>
  <h2>Live</h2><div id="livelog"></div>
 </section>
 <section id="detail"><h2>Mission</h2><div id="mbody">select a mission</div></section>
</main>
<script>
"use strict";
const $=s=>document.querySelector(s);
const fmt=(v,d=2)=>v==null?"":(+v).toFixed(d);

function spark(xs,ys,w,h,color){
 if(!ys.length)return "";
 const ymax=Math.max(...ys)||1,xmax=Math.max(...xs)||1;
 const pts=xs.map((x,i)=>(x/xmax*(w-4)+2).toFixed(1)+","+((1-ys[i]/ymax)*(h-4)+2).toFixed(1)).join(" ");
 return '<svg width="'+w+'" height="'+h+'"><polyline points="'+pts+
  '" fill="none" stroke="'+color+'" stroke-width="1.2"/></svg>';
}

function waterfall(rows,w){
 if(!rows.length)return "";
 const mk=Math.max(...rows.map(r=>r.mk))||1,rh=4,h=rows.length*rh+4;
 let s='<svg width="'+w+'" height="'+h+'">';
 rows.forEach((r,i)=>{
  let x=2;const y=2+i*rh;
  for(const[seg,c]of[["cp","#7fd1b9"],["qu","#e0c97b"],["tr","#7fa6d1"]]){
   const len=(r[seg]||0)/mk*(w-4);
   if(len>0)s+='<rect x="'+x.toFixed(1)+'" y="'+y+'" width="'+len.toFixed(1)+'" height="'+(rh-1)+'" fill="'+c+'"/>';
   x+=len;
  }
 });
 return s+"</svg>";
}

async function loadMissions(){
 const ms=await (await fetch("missions")).json();
 const tb=$("#missions tbody");tb.innerHTML="";
 (ms||[]).slice().reverse().forEach(m=>{
  const end=m.end,tr=document.createElement("tr");
  tr.className="m";
  const outcome=!end?"running":(end.success?"success":"failure");
  const cls=!end?"run":(end.success?"ok":"bad");
  tr.innerHTML="<td>"+m.start.id+"</td><td>"+m.start.seed+"</td><td>"+(m.start.workload||"")+
   "</td><td class="+cls+">"+outcome+"</td><td>"+(end?fmt(end.time,1):"")+
   "</td><td>"+(end?fmt(end.vdp_p99,3):"")+"</td><td>"+(end?fmt(end.total_energy,0):"")+"</td>";
  tr.onclick=()=>loadMission(m.start.id);
  tb.appendChild(tr);
 });
 $("#status").textContent=(ms||[]).length+" missions";
}

async function loadFleet(){
 const f=await (await fetch("fleet")).json();
 $("#fleet").innerHTML=
  "<div><b>"+f.missions+"</b> missions, <b>"+fmt(100*f.success_rate,0)+"%</b> success</div>"+
  "<div>VDP p50 <b>"+fmt(f.vdp_p50,3)+"</b> · p95 <b>"+fmt(f.vdp_p95,3)+"</b> · p99 <b>"+fmt(f.vdp_p99,3)+"</b> s</div>"+
  "<div>mean energy <b>"+fmt(f.mean_energy_j,0)+"</b> J · flip rate <b>"+fmt(f.mean_flip_rate,2)+"</b>/min</div>"+
  ((f.records_dropped||0)>0
   ?'<div class="bad">recorder dropped <b>'+f.records_dropped+'</b> records — time series have holes</div>'
   :'<div>recorder dropped <b>0</b> records</div>')+
  spark((f.flip_rates||[]).map((_,i)=>i+1),(f.flip_rates||[]).map(p=>p.rate),280,40,"#e0c97b");
}

async function loadMission(id){
 const m=await (await fetch("missions/"+encodeURIComponent(id))).json();
 const ticks=m.ticks||[],spans=m.spans||[],end=m.end;
 let h="<h2>Mission "+id+"</h2>";
 if(end)h+="<div>"+(end.success?'<span class="ok">success</span>':'<span class="bad">failure</span>')+
  " — "+end.reason+" · "+fmt(end.time,1)+" s · "+fmt(end.total_energy,0)+" J · "+
  end.switches+" switches · "+end.failovers+" failovers · VDP p99 "+fmt(end.vdp_p99,3)+" s</div>";
 h+="<h2>VDP (s)</h2>"+spark(ticks.map(t=>t.t),ticks.map(t=>t.vdp),560,80,"#7fd1b9");
 h+="<h2>Energy (J)</h2>"+spark(ticks.map(t=>t.t),ticks.map(t=>t.e),560,60,"#e07b7b");
 h+="<h2>Bandwidth (msg/s)</h2>"+spark(ticks.map(t=>t.t),ticks.map(t=>t.bw),560,60,"#7fa6d1");
 if(spans.length)h+="<h2>Critical-path waterfall (compute/queue/transport)</h2>"+waterfall(spans,560);
 if((m.decisions||[]).length){
  h+="<h2>Decisions</h2><table><tr><th>t</th><th>reason</th><th>from→to</th><th>bw</th></tr>"+
   m.decisions.map(d=>"<tr><td>"+fmt(d.t,1)+"</td><td>"+d.reason+"</td><td>"+d.from+"→"+d.to+
    "</td><td>"+fmt(d.bw,1)+"</td></tr>").join("")+"</table>";
 }
 $("#detail").innerHTML=h;
}

function startLive(){
 const log=$("#livelog");
 const es=new EventSource("live");
 const add=(k,d)=>{
  const div=document.createElement("div");
  div.innerHTML='<span class="k">'+k+"</span> "+d;
  log.prepend(div);
  while(log.children.length>60)log.lastChild.remove();
 };
 for(const k of["hello","tick","switch","alg2","fault","failover","watchdog_stop","drop","mission"])
  es.addEventListener(k,e=>add(k,e.data));
 es.onerror=()=>{es.close();add("live","stream closed")};
}

loadMissions();loadFleet();startLive();
setInterval(()=>{loadMissions();loadFleet()},5000);
</script>
</body>
</html>
`
