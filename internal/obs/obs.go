// Package obs is the mission telemetry subsystem: a thread-safe metrics
// registry (counters, gauges, fixed-bucket histograms with p50/p95/p99
// estimation), a structured event timeline backed by a bounded ring
// buffer, and exporters (JSONL event dump, expvar-style snapshot, and a
// human-readable post-mortem report).
//
// The paper's §VII system stands on what its ROBOT/WORKER profilers can
// observe — per-node processing times, VDP makespan, packet bandwidth
// and signal direction drive Algorithms 1 and 2 — so the reproduction
// needs the same continuous view to explain *why* a mission adapted the
// way it did. Everything here is standard library only and designed so
// the disabled path costs nothing: a nil *Telemetry is a valid no-op
// sink, every method on it is nil-safe, and instrumented hot paths do no
// allocation when telemetry is off.
package obs

import (
	"sync"
	"sync/atomic"
)

// Sink receives telemetry from instrumented components (the mission
// engine, the middleware bus and endpoints, the wireless link, the
// real-socket switcher). A nil *Telemetry implements it as a no-op;
// holders of a Sink interface value should nil-check the interface
// itself before calling to keep the disabled path free.
type Sink interface {
	// Count increments the counter name+label by delta.
	Count(name, label string, delta float64)
	// SetGauge stores the latest value of gauge name+label.
	SetGauge(name, label string, v float64)
	// Observe records one sample in histogram name+label.
	Observe(name, label string, v float64)
	// Emit appends one event to the timeline.
	Emit(ev Event)
}

// Metric names used by the instrumented subsystems. Labels in comments.
const (
	// MNodeExecSeconds histograms per-node execution time. Label: node.
	MNodeExecSeconds = "node_exec_seconds"
	// MNodeExecs counts node executions. Label: node.
	MNodeExecs = "node_execs"
	// MHostBusySeconds accumulates execution seconds per host. Label: host.
	MHostBusySeconds = "host_busy_seconds"
	// MProbeRTTSeconds histograms heartbeat round trips. No label.
	MProbeRTTSeconds = "probe_rtt_seconds"
	// MTickSeconds histograms control-tick pipeline latency. No label.
	MTickSeconds = "tick_pipeline_seconds"
	// MBandwidth gauges Algorithm 2's r_t (msgs/s). No label.
	MBandwidth = "alg2_bandwidth"
	// MDirection gauges Algorithm 2's d_t. No label.
	MDirection = "alg2_direction"
	// MRemoteOK gauges the Algorithm 2 decision (1 remote / 0 local).
	MRemoteOK = "alg2_remote_ok"
	// MSwitches counts placement switches. No label.
	MSwitches = "placement_switches"
	// MTransfers counts cross-host transfers. Label: topic.
	MTransfers = "net_transfers"
	// MTransferBytes accumulates cross-host bytes. Label: topic.
	MTransferBytes = "net_transfer_bytes"
	// MDrops counts lost messages. Label: topic.
	MDrops = "net_drops"
	// MOverwrites counts bounded-queue freshness overwrites. Label: topic
	// or endpoint.
	MOverwrites = "queue_overwrites"
	// MLinkSent / MLinkDropped count wireless-link packets. No label.
	MLinkSent    = "link_packets_sent"
	MLinkDropped = "link_packets_dropped"
	// MLinkLatencySeconds histograms delivered-packet latency. No label.
	MLinkLatencySeconds = "link_latency_seconds"
	// MLinkSignal gauges the last observed signal strength. No label.
	MLinkSignal = "link_signal"
	// MLinkHandoffs counts roaming handoffs between access points. No
	// label.
	MLinkHandoffs = "link_handoffs"
	// MAdvEvals counts mission evaluations spent by the fault-schedule
	// adversary; MAdvWorstScore gauges its best (worst-case) score so
	// far. No label.
	MAdvEvals      = "adv_evals"
	MAdvWorstScore = "adv_worst_score"
	// MStoreDropped gauges how many records the mission store's bounded
	// recording queue discarded during the run (holes in the persisted
	// time series). No label.
	MStoreDropped = "store_records_dropped"
	// MFrames counts real-socket frames received. Label: transport.
	MFrames = "endpoint_frames"
	// MDecodeErrors counts real-socket frames that failed to decode.
	// Label: transport.
	MDecodeErrors = "endpoint_decode_errors"
	// MBacklog gauges frames queued but not yet polled — the stale-data
	// backlog a reliable transport accumulates. Label: transport.
	MBacklog = "endpoint_backlog"
	// MFaultsInjected counts disturbances injected by the fault
	// schedule. Label: fault kind.
	MFaultsInjected = "faults_injected"
	// MWatchdogStops counts command-staleness safety stops. No label.
	MWatchdogStops = "watchdog_stops"
	// MFailovers counts remote→local failovers forced by consecutive
	// missed control ticks. No label.
	MFailovers = "failovers"
	// MReconnects counts worker links re-established after being
	// declared dead. Label: transport or peer.
	MReconnects = "reconnects"
	// Critical-path decomposition of the per-tick VDP makespan (fed by
	// the tracing layer, internal/spans): compute seconds labelled by
	// host, queue/transport seconds labelled by link direction. The
	// three segments of one tick sum to that tick's makespan.
	MCritComputeSeconds   = "critpath_compute_seconds"   // label: host
	MCritQueueSeconds     = "critpath_queue_seconds"     // label: up|down
	MCritTransportSeconds = "critpath_transport_seconds" // label: up|down
	// MSLOBreaches counts SLO rule breaches. Label: rule metric.
	MSLOBreaches = "slo_breaches"
	// MFlightDumps counts flight-recorder bundle dumps. Label: trigger
	// reason.
	MFlightDumps = "flight_dumps"

	// MServeAdmitted counts missions admitted by the serve scheduler.
	MServeAdmitted = "serve_admitted"
	// MServeRejected counts admissions refused. Label: reason
	// (full/closed).
	MServeRejected = "serve_rejected"
	// MServeEvicted counts missions evicted over-deadline. Label: where
	// (queue/deadline).
	MServeEvicted = "serve_evicted"
	// MServeFinished counts missions reaching a terminal state. Label:
	// outcome (success/failure/canceled/evicted/failed).
	MServeFinished = "serve_finished"
	// MServeQueued gauges the current admission-queue depth.
	MServeQueued = "serve_queued"
	// MServeRunning gauges currently running (incl. materializing)
	// missions.
	MServeRunning = "serve_running"
	// MServeAdmitWaitSeconds observes admit→dispatch queue latency.
	MServeAdmitWaitSeconds = "serve_admit_wait_seconds"
)

// Telemetry bundles a registry and a timeline and implements Sink plus
// the semantic hooks the engine calls. The zero value is not usable —
// construct with NewTelemetry — but a nil *Telemetry is a valid no-op:
// every method checks the receiver, so instrumented code can call hooks
// unconditionally.
type Telemetry struct {
	Reg      *Registry
	Timeline *Timeline

	mu    sync.Mutex
	phase string

	// tee holds the optional secondary Sinks (a teeBox) every emitted
	// event is forwarded to — the live SSE hub and the flight recorder
	// attach here. An atomic keeps the common no-tee path at one load,
	// no lock; attachment is copy-on-write under mu.
	tee atomic.Value
}

// teeBox wraps the teed Sinks so atomic.Value always stores one
// concrete type (and can represent "detached" as a box holding nil).
type teeBox struct{ sinks []Sink }

// NewTelemetry builds an enabled telemetry sink whose timeline holds at
// most eventCap events (<= 0 means DefaultTimelineCap).
func NewTelemetry(eventCap int) *Telemetry {
	return &Telemetry{Reg: NewRegistry(), Timeline: NewTimeline(eventCap)}
}

// Enabled reports whether the receiver collects anything.
func (t *Telemetry) Enabled() bool { return t != nil }

// SetPhase sets the mission phase stamped on subsequent events.
func (t *Telemetry) SetPhase(p string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.phase = p
	t.mu.Unlock()
}

// Phase returns the current mission phase.
func (t *Telemetry) Phase() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.phase
}

// Count implements Sink.
func (t *Telemetry) Count(name, label string, delta float64) {
	if t == nil {
		return
	}
	t.Reg.Add(name, label, delta)
}

// SetGauge implements Sink.
func (t *Telemetry) SetGauge(name, label string, v float64) {
	if t == nil {
		return
	}
	t.Reg.Set(name, label, v)
}

// Observe implements Sink.
func (t *Telemetry) Observe(name, label string, v float64) {
	if t == nil {
		return
	}
	t.Reg.Observe(name, label, v)
}

// Tee forwards every subsequently emitted event to s as well as the
// timeline. Multiple sinks may attach (the live SSE hub and the flight
// recorder both do); each call appends, copy-on-write, and Tee(nil)
// detaches all. Nil-safe.
func (t *Telemetry) Tee(s Sink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s == nil {
		t.tee.Store(teeBox{})
		return
	}
	var sinks []Sink
	if box, ok := t.tee.Load().(teeBox); ok {
		sinks = append(sinks, box.sinks...)
	}
	t.tee.Store(teeBox{sinks: append(sinks, s)})
}

// Emit implements Sink: it stamps the current phase, appends to the
// timeline and forwards to the teed sinks, if any.
func (t *Telemetry) Emit(ev Event) {
	if t == nil {
		return
	}
	if ev.Phase == "" {
		ev.Phase = t.Phase()
	}
	t.Timeline.Append(ev)
	if box, ok := t.tee.Load().(teeBox); ok {
		for _, s := range box.sinks {
			s.Emit(ev)
		}
	}
}

// ---------------------------------------------------------------------------
// Semantic hooks: one per instrumented site, so call sites stay one line
// and the event schema lives here.

// NodeExec records one work-node execution: a span event plus the
// per-node latency histogram and per-host occupancy counter.
func (t *Telemetry) NodeExec(node, host string, start, procSec float64, threads int) {
	if t == nil {
		return
	}
	t.Reg.Observe(MNodeExecSeconds, node, procSec)
	t.Reg.Add(MNodeExecs, node, 1)
	t.Reg.Add(MHostBusySeconds, host, procSec)
	t.Emit(Event{Kind: KindNodeExec, T0: start, T1: start + procSec,
		Node: node, Host: host, Value: procSec, Bytes: threads})
}

// TickSpan records one control-pipeline pass and its end-to-end latency.
func (t *Telemetry) TickSpan(t0, t1, pipelineLat float64) {
	if t == nil {
		return
	}
	t.Reg.Observe(MTickSeconds, "", pipelineLat)
	t.Emit(Event{Kind: KindTick, T0: t0, T1: t1, Value: pipelineLat})
}

// Probe records one heartbeat round trip.
func (t *Telemetry) Probe(now, rtt float64) {
	if t == nil {
		return
	}
	t.Reg.Observe(MProbeRTTSeconds, "", rtt)
	t.Emit(Event{Kind: KindProbe, T0: now, T1: now + rtt, Value: rtt})
}

// Alg2 records an Algorithm 2 decision flip with its inputs, and keeps
// the live gauges current.
func (t *Telemetry) Alg2(now, bw, dir float64, remoteOK bool) {
	if t == nil {
		return
	}
	t.Reg.Set(MBandwidth, "", bw)
	t.Reg.Set(MDirection, "", dir)
	ok := 0.0
	if remoteOK {
		ok = 1
	}
	t.Reg.Set(MRemoteOK, "", ok)
	t.Emit(Event{Kind: KindAlg2, T0: now, T1: now,
		Bandwidth: bw, Direction: dir, Remote: remoteOK})
}

// Switch records one placement switch with the bandwidth and direction
// inputs behind it, the migrated state size, and a "from -> to" detail.
func (t *Telemetry) Switch(now, bw, dir, stateBytes float64, remote bool, fromTo string) {
	if t == nil {
		return
	}
	t.Reg.Add(MSwitches, "", 1)
	t.Emit(Event{Kind: KindSwitch, T0: now, T1: now,
		Bandwidth: bw, Direction: dir, Value: stateBytes,
		Remote: remote, Detail: fromTo})
}

// Transfer records one message crossing hosts.
func (t *Telemetry) Transfer(sent, arrive float64, topic, to string, bytes int) {
	if t == nil {
		return
	}
	t.Reg.Add(MTransfers, topic, 1)
	t.Reg.Add(MTransferBytes, topic, float64(bytes))
	t.Emit(Event{Kind: KindTransfer, T0: sent, T1: arrive,
		Node: topic, Host: to, Bytes: bytes, Value: arrive - sent})
}

// Drop records one message lost in flight or overwritten in a queue.
func (t *Telemetry) Drop(now float64, topic, where string) {
	if t == nil {
		return
	}
	t.Reg.Add(MDrops, topic, 1)
	t.Emit(Event{Kind: KindDrop, T0: now, T1: now, Node: topic, Detail: where})
}

// Watchdog records one command-staleness safety stop.
func (t *Telemetry) Watchdog(now, staleness float64) {
	if t == nil {
		return
	}
	t.Reg.Add(MWatchdogStops, "", 1)
	t.Emit(Event{Kind: KindWatchdog, T0: now, T1: now, Value: staleness})
}

// Failover records the safety controller pulling execution home after
// misses consecutive missed control ticks.
func (t *Telemetry) Failover(now float64, misses int, detail string) {
	if t == nil {
		return
	}
	t.Reg.Add(MFailovers, "", 1)
	t.Emit(Event{Kind: KindFailover, T0: now, T1: now,
		Value: float64(misses), Detail: detail})
}

// SLOBreach records one service-level rule opening: a timeline event
// carrying the offending value and its limit, plus the per-metric
// breach counter.
func (t *Telemetry) SLOBreach(now float64, metric string, value, limit float64, detail string) {
	if t == nil {
		return
	}
	t.Reg.Add(MSLOBreaches, metric, 1)
	t.Emit(Event{Kind: KindSLOBreach, T0: now, T1: now,
		Node: metric, Value: value, Bandwidth: limit, Detail: detail})
}

// Reconnect records a worker link re-established after an outage of
// outageSec wall seconds.
func (t *Telemetry) Reconnect(now, outageSec float64, peer string) {
	if t == nil {
		return
	}
	t.Reg.Add(MReconnects, peer, 1)
	t.Emit(Event{Kind: KindReconnect, T0: now, T1: now,
		Value: outageSec, Detail: peer})
}

// Events returns the timeline's events (nil-safe, oldest first).
func (t *Telemetry) Events() []Event {
	if t == nil {
		return nil
	}
	return t.Timeline.Events()
}

// Snapshot returns the registry's metrics (nil-safe).
func (t *Telemetry) Snapshot() []MetricPoint {
	if t == nil {
		return nil
	}
	return t.Reg.Snapshot()
}
