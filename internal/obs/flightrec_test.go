package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{Frames: 8, WindowSec: 100})
	for i := 0; i < 20; i++ {
		r.Record(FlightFrame{T: float64(i)})
	}
	if got := r.FrameCount(); got != 8 {
		t.Fatalf("FrameCount = %d, want 8", got)
	}
	if got := r.LastTime(); got != 19 {
		t.Fatalf("LastTime = %g, want 19", got)
	}
	b := r.ForceDump("test", "", 19)
	if b == nil {
		t.Fatal("ForceDump returned nil")
	}
	// The ring holds the newest 8 frames: t=12..19.
	if b.Frames != 8 {
		t.Fatalf("bundle has %d frames, want 8", b.Frames)
	}
	info, err := VerifyFlightBundle(b.Data)
	if err != nil {
		t.Fatalf("bundle fails verification: %v", err)
	}
	if info.Frames != 8 || info.Reason != "test" || info.T != 19 {
		t.Errorf("verified info %+v", info)
	}
}

func TestFlightDumpWindow(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{Frames: 64, WindowSec: 5})
	for i := 0; i < 50; i++ {
		r.Record(FlightFrame{T: float64(i)})
	}
	b := r.Dump("w", "", 49)
	if b == nil {
		t.Fatal("Dump returned nil")
	}
	// Only the last WindowSec seconds: t in [44, 49].
	if b.Frames != 6 {
		t.Fatalf("bundle has %d frames, want 6 (t=44..49)", b.Frames)
	}
	if _, err := VerifyFlightBundle(b.Data); err != nil {
		t.Fatal(err)
	}
}

func TestFlightDumpRateLimit(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{MaxDumps: 2, MinSpacing: 5})
	r.Record(FlightFrame{T: 1})
	if r.Dump("a", "", 1) == nil {
		t.Fatal("first dump suppressed")
	}
	if b := r.Dump("b", "", 2); b != nil {
		t.Fatal("dump inside MinSpacing not suppressed")
	}
	if r.Dump("c", "", 7) == nil {
		t.Fatal("dump after MinSpacing suppressed")
	}
	if b := r.Dump("d", "", 20); b != nil {
		t.Fatal("dump beyond MaxDumps not suppressed")
	}
	// ForceDump gets the reserved extra slot, then stops too.
	if r.ForceDump("panic", "", 21) == nil {
		t.Fatal("forced dump suppressed despite reserved slot")
	}
	if r.ForceDump("panic2", "", 22) != nil {
		t.Fatal("second forced dump beyond the reserved slot")
	}
	if got := len(r.Bundles()); got != 3 {
		t.Errorf("kept %d bundles, want 3", got)
	}
}

func TestFlightDumpAtVirtualZero(t *testing.T) {
	// lastDump==0 is a valid virtual time: a dump at t=0 must still
	// rate-limit the next one.
	r := NewFlightRecorder(FlightConfig{MinSpacing: 5})
	r.Record(FlightFrame{T: 0})
	if r.Dump("zero", "", 0) == nil {
		t.Fatal("dump at t=0 suppressed")
	}
	if b := r.Dump("next", "", 1); b != nil {
		t.Fatal("dump at t=1 should be inside MinSpacing of the t=0 dump")
	}
}

func TestFlightDumpEventsAndFile(t *testing.T) {
	dir := t.TempDir()
	r := NewFlightRecorder(FlightConfig{WindowSec: 10, Dir: dir})
	for i := 0; i < 30; i++ {
		r.Record(FlightFrame{T: float64(i)})
	}
	// Feed events through the Sink face, as Telemetry.Tee would.
	var s Sink = r
	s.Emit(Event{Kind: KindFault, T0: 2, T1: 3})    // outside window at t=29
	s.Emit(Event{Kind: KindSwitch, T0: 25, T1: 25}) // inside
	s.Emit(Event{Kind: KindFault, T0: 18, T1: 22})  // straddles the cutoff: kept
	s.Count("x", "", 1)                             // metric no-ops must not panic
	s.SetGauge("x", "", 1)
	s.Observe("x", "", 1)

	b := r.Dump("slo:test", "detail here", 29)
	if b == nil {
		t.Fatal("dump failed")
	}
	if b.Events != 2 {
		t.Fatalf("bundle has %d events, want 2 (one outside the window)", b.Events)
	}
	if b.WriteErr != "" {
		t.Fatalf("write error: %s", b.WriteErr)
	}
	if b.File == "" {
		t.Fatal("Dir set but no file written")
	}
	if base := filepath.Base(b.File); strings.ContainsAny(base, ": ") {
		t.Errorf("filename %q not sanitized", base)
	}
	data, err := os.ReadFile(b.File)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, b.Data) {
		t.Error("file content differs from in-memory bundle")
	}
	if _, err := VerifyFlightBundle(data); err != nil {
		t.Fatal(err)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var r *FlightRecorder
	r.Record(FlightFrame{T: 1})
	r.Emit(Event{})
	if r.Dump("x", "", 1) != nil || r.ForceDump("x", "", 1) != nil {
		t.Error("nil recorder dumped")
	}
	if r.Bundles() != nil || r.FrameCount() != 0 || r.LastTime() != 0 {
		t.Error("nil recorder leaked state")
	}
}

func TestVerifyFlightBundleRejects(t *testing.T) {
	valid := func() []byte {
		r := NewFlightRecorder(FlightConfig{WindowSec: 10})
		r.Record(FlightFrame{T: 1})
		r.Record(FlightFrame{T: 2})
		r.Emit(Event{Kind: KindFault, T0: 2, T1: 2})
		return r.Dump("ok", "", 2).Data
	}()
	if _, err := VerifyFlightBundle(valid); err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"garbage header", []byte("not json\n")},
		{"wrong version", []byte(`{"version":"lgvflight0","reason":"x","t":1,"window":10,"frames":0,"events":0}` + "\n")},
		{"frame count mismatch", []byte(`{"version":"lgvflight1","reason":"x","t":1,"window":10,"frames":2,"events":0}` + "\n" +
			`{"frame":{"t":1}}` + "\n")},
		{"event count mismatch", []byte(`{"version":"lgvflight1","reason":"x","t":1,"window":10,"frames":0,"events":2}` + "\n" +
			`{"event":{"kind":"fault","t0":1,"t1":1}}` + "\n")},
		{"frame outside window", []byte(`{"version":"lgvflight1","reason":"x","t":100,"window":10,"frames":1,"events":0}` + "\n" +
			`{"frame":{"t":1}}` + "\n")},
		{"frames out of order", []byte(`{"version":"lgvflight1","reason":"x","t":10,"window":10,"frames":2,"events":0}` + "\n" +
			`{"frame":{"t":9}}` + "\n" + `{"frame":{"t":4}}` + "\n")},
		{"frame after events", []byte(`{"version":"lgvflight1","reason":"x","t":10,"window":10,"frames":2,"events":1}` + "\n" +
			`{"frame":{"t":4}}` + "\n" + `{"event":{"kind":"fault"}}` + "\n" + `{"frame":{"t":5}}` + "\n")},
		{"unknown row", []byte(`{"version":"lgvflight1","reason":"x","t":10,"window":10,"frames":0,"events":0}` + "\n" +
			`{"neither":1}` + "\n")},
	}
	for _, tc := range cases {
		if _, err := VerifyFlightBundle(tc.data); err == nil {
			t.Errorf("%s: accepted, want rejection", tc.name)
		}
	}
}

func TestFlightDumpDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewFlightRecorder(FlightConfig{WindowSec: 30})
		for i := 0; i < 100; i++ {
			r.Record(FlightFrame{T: float64(i) * 0.2, VDP: 0.04, EnergyJ: float64(i), Sent: i})
			if i%10 == 0 {
				r.Emit(Event{Kind: KindTick, T0: float64(i) * 0.2, Value: float64(i)})
			}
		}
		return r.Dump("det", "", 19.8).Data
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Error("identical recordings produced different bundle bytes")
	}
}
