package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// LiveHub fans mission telemetry out to Server-Sent-Events subscribers:
// attach one to a Telemetry with Tee and every timeline event (ticks,
// switches, faults, drops, ...) is rendered once as an SSE frame and
// broadcast to all connected /live clients. A short replay ring hands
// late subscribers the most recent frames so a scrape right after a
// mission finishes still sees events.
//
// LiveHub implements Sink: metrics calls are no-ops (scrape /metrics
// for those); only Emit broadcasts. A slow subscriber never blocks the
// producer — its queue overflows and frames are counted as dropped for
// that subscriber only.
type LiveHub struct {
	mu      sync.Mutex
	subs    map[chan []byte]*subState
	ring    [][]byte // recent frames, oldest first
	ringCap int
	seq     uint64
	dropped uint64 // frames dropped across all subscribers, ever
	closed  bool
}

type subState struct{ dropped uint64 }

// subQueueCap bounds one subscriber's frame queue; at ~10 events per
// 0.2 s control tick this is several seconds of slack.
const subQueueCap = 1024

// defaultReplay is how many recent frames a new subscriber receives.
const defaultReplay = 256

// NewLiveHub builds a hub whose replay ring holds replayCap frames
// (<= 0 means the default).
func NewLiveHub(replayCap int) *LiveHub {
	if replayCap <= 0 {
		replayCap = defaultReplay
	}
	return &LiveHub{subs: make(map[chan []byte]*subState), ringCap: replayCap}
}

// Count implements Sink (no-op; the hub streams events, not metrics).
func (h *LiveHub) Count(name, label string, delta float64) {}

// SetGauge implements Sink (no-op).
func (h *LiveHub) SetGauge(name, label string, v float64) {}

// Observe implements Sink (no-op).
func (h *LiveHub) Observe(name, label string, v float64) {}

// Emit implements Sink: render the event as one SSE frame and broadcast.
func (h *LiveHub) Emit(ev Event) {
	if h == nil {
		return
	}
	body, err := json.Marshal(ev)
	if err != nil {
		return
	}
	h.Publish(string(ev.Kind), body)
}

// Publish broadcasts one pre-marshaled JSON payload as an SSE frame
// with the given event name. Producers use it for lifecycle frames the
// timeline does not carry (mission start/end).
func (h *LiveHub) Publish(event string, data []byte) {
	if h == nil {
		return
	}
	frame := []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", event, data))
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.seq++
	if len(h.ring) >= h.ringCap {
		copy(h.ring, h.ring[1:])
		h.ring[len(h.ring)-1] = frame
	} else {
		h.ring = append(h.ring, frame)
	}
	for ch, st := range h.subs {
		select {
		case ch <- frame:
		default:
			st.dropped++
			h.dropped++
		}
	}
	h.mu.Unlock()
}

// subscribe registers a new subscriber and returns its channel plus the
// replay frames it should be sent first.
func (h *LiveHub) subscribe() (chan []byte, [][]byte) {
	ch := make(chan []byte, subQueueCap)
	h.mu.Lock()
	replay := append([][]byte(nil), h.ring...)
	if !h.closed {
		h.subs[ch] = &subState{}
	} else {
		close(ch)
	}
	h.mu.Unlock()
	return ch, replay
}

func (h *LiveHub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// Close disconnects all subscribers (their streams end cleanly) and
// makes further publishes no-ops. Nil-safe.
func (h *LiveHub) Close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		for ch := range h.subs {
			close(ch)
			delete(h.subs, ch)
		}
	}
	h.mu.Unlock()
}

// Dropped returns the total frames discarded because a subscriber's
// queue was full, across all subscribers since the hub was built
// (nil-safe). Survives unsubscribes, so it is the hub-level signal that
// some client fell behind.
func (h *LiveHub) Dropped() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// Subscribers returns the current subscriber count (nil-safe).
func (h *LiveHub) Subscribers() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// ServeHTTP streams SSE frames: a "hello" event first (so probes always
// receive one event promptly, even after the mission has ended), then
// the replay ring, then live frames until the client disconnects or the
// hub closes.
func (h *LiveHub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch, replay := h.subscribe()
	defer h.unsubscribe(ch)

	fmt.Fprintf(w, "event: hello\ndata: {\"replay\":%d}\n\n", len(replay))
	for _, frame := range replay {
		w.Write(frame)
	}
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			// Drain whatever else is queued before flushing once.
			for drained := false; !drained; {
				select {
				case more, ok := <-ch:
					if !ok {
						fl.Flush()
						return
					}
					if _, err := w.Write(more); err != nil {
						return
					}
				default:
					drained = true
				}
			}
			fl.Flush()
		}
	}
}
