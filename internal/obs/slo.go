package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SLO engine: declarative service-level rules evaluated live, every
// tick, over rolling windows of virtual time. The paper's practicality
// argument is that VDP stays inside a mission-level budget while Alg. 2
// adapts; these rules make that budget (and its siblings: energy rate,
// command staleness, handoff flapping) a first-class runtime judgment
// instead of an offline plot.
//
// Rule syntax (comma-separated in -slo specs):
//
//	metric<=threshold@WINDOWs   budget rule: stat over the window must
//	                            stay <= threshold
//	metric~factor@WINDOWs       anomaly rule: stat must stay <= factor ×
//	                            its own EWMA baseline
//
// Metrics: vdp_p99 (s), energy_rate (J/s), staleness (s), handoff_rate
// (handoffs/s). Example: "vdp_p99<=0.5@30s,energy_rate~3@20s".

// SLO metric names.
const (
	SLOVdpP99      = "vdp_p99"
	SLOEnergyRate  = "energy_rate"
	SLOStaleness   = "staleness"
	SLOHandoffRate = "handoff_rate"
)

// Rule modes.
const (
	SLOBudget = "budget" // stat <= Threshold
	SLOAnom   = "ewma"   // stat <= Threshold × EWMA(stat)
)

const (
	sloDefaultWarmup = 5.0  // s of virtual time before rules arm
	sloSustainN      = 3    // consecutive bad samples to open a breach
	sloClearN        = 3    // consecutive good samples to close it
	sloEWMAAlpha     = 0.05 // baseline smoothing
	sloHistoryCap    = 256  // bounded breach history
)

// SLORule is one parsed service-level rule.
type SLORule struct {
	Metric    string  `json:"metric"`
	Mode      string  `json:"mode"`      // SLOBudget | SLOAnom
	Threshold float64 `json:"threshold"` // limit (budget) or factor (ewma)
	Window    float64 `json:"window"`    // seconds of rolling window
}

// String reconstructs the rule in -slo spec syntax.
func (r SLORule) String() string {
	op := "<="
	if r.Mode == SLOAnom {
		op = "~"
	}
	return fmt.Sprintf("%s%s%s@%ss", r.Metric, op,
		strconv.FormatFloat(r.Threshold, 'g', -1, 64),
		strconv.FormatFloat(r.Window, 'g', -1, 64))
}

// SLOSample is the per-tick input to the engine: current virtual time
// plus the handful of mission stats the rule metrics derive from.
// Energy and handoffs are cumulative; the engine differentiates them
// over each rule's window.
type SLOSample struct {
	T         float64 // virtual time (s)
	VDP       float64 // this tick's end-to-end pipeline latency (s)
	EnergyJ   float64 // cumulative robot energy (J)
	Staleness float64 // current command staleness (s)
	Handoffs  int     // cumulative WAP handoff count
}

// Breach records one rule transition into the breached state.
type Breach struct {
	T      float64 `json:"t"`
	Rule   string  `json:"rule"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Limit  float64 `json:"limit"`
}

// HealthStatus is the inspector's /health + /ready projection.
type HealthStatus struct {
	Healthy  bool     `json:"healthy"`
	Ready    bool     `json:"ready"`
	Samples  int64    `json:"samples"`
	Breaches int      `json:"breaches"`
	Open     []string `json:"open,omitempty"`
}

// sloRing is a grow-once circular buffer of (t, v) pairs. Capacity
// doubles until the window is covered, then the steady state allocates
// nothing.
type sloRing struct {
	t, v []float64
	head int // index of oldest
	n    int
}

func (r *sloRing) push(t, v float64) {
	if r.n == len(r.t) {
		grown := 2 * len(r.t)
		if grown < 64 {
			grown = 64
		}
		nt := make([]float64, grown)
		nv := make([]float64, grown)
		for i := 0; i < r.n; i++ {
			nt[i] = r.t[(r.head+i)%len(r.t)]
			nv[i] = r.v[(r.head+i)%len(r.t)]
		}
		r.t, r.v, r.head = nt, nv, 0
	}
	i := (r.head + r.n) % len(r.t)
	r.t[i], r.v[i] = t, v
	r.n++
}

// evict drops samples older than cutoff but always keeps the newest.
func (r *sloRing) evict(cutoff float64) {
	for r.n > 1 && r.t[r.head] < cutoff {
		r.head = (r.head + 1) % len(r.t)
		r.n--
	}
}

func (r *sloRing) oldest() (float64, float64) { return r.t[r.head], r.v[r.head] }

func (r *sloRing) newest() (float64, float64) {
	i := (r.head + r.n - 1) % len(r.t)
	return r.t[i], r.v[i]
}

type sloRuleState struct {
	rule SLORule
	ring sloRing
	ewma float64
	seen bool // ewma initialized
	bad  int  // consecutive violating samples
	good int  // consecutive ok samples while open
	open bool
}

// SLOEngine evaluates a rule set against per-tick samples. The zero
// value is unusable; construct with NewSLOEngine. A nil *SLOEngine is a
// valid no-op (Observe returns nil, Health reports healthy), matching
// the rest of the obs plane.
type SLOEngine struct {
	mu      sync.Mutex
	rules   []sloRuleState
	warmup  float64
	samples int64
	history []Breach
	scratch []float64 // reused p99 sort buffer
}

// NewSLOEngine builds an engine over the given rules. Rules arm after
// sloDefaultWarmup seconds of virtual time so start-of-mission
// transients (staleness measured from t=0, empty windows) don't fire.
func NewSLOEngine(rules []SLORule) *SLOEngine {
	e := &SLOEngine{warmup: sloDefaultWarmup}
	for _, r := range rules {
		e.rules = append(e.rules, sloRuleState{rule: r})
	}
	return e
}

// SetWarmup overrides the arming delay (seconds of virtual time).
func (e *SLOEngine) SetWarmup(sec float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.warmup = sec
	e.mu.Unlock()
}

// Rules returns a copy of the configured rules.
func (e *SLOEngine) Rules() []SLORule {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLORule, len(e.rules))
	for i := range e.rules {
		out[i] = e.rules[i].rule
	}
	return out
}

// Observe feeds one tick sample and returns the breaches (closed→open
// transitions) it caused, or nil — the common case — with zero
// allocations once the windows are warm.
func (e *SLOEngine) Observe(s SLOSample) []Breach {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.samples++
	var out []Breach
	for i := range e.rules {
		st := &e.rules[i]
		stat, ok := e.eval(st, s)
		if !ok {
			continue
		}
		limit := st.rule.Threshold
		if st.rule.Mode == SLOAnom {
			if !st.seen {
				st.ewma, st.seen = stat, true
				continue
			}
			limit = st.rule.Threshold * st.ewma
			st.ewma += sloEWMAAlpha * (stat - st.ewma)
		}
		violating := stat > limit && s.T >= e.warmup
		if violating {
			st.bad++
			st.good = 0
			if !st.open && st.bad >= sloSustainN {
				st.open = true
				b := Breach{T: s.T, Rule: st.rule.String(), Metric: st.rule.Metric, Value: stat, Limit: limit}
				out = append(out, b)
				if len(e.history) < sloHistoryCap {
					e.history = append(e.history, b)
				}
			}
		} else {
			st.bad = 0
			if st.open {
				st.good++
				if st.good >= sloClearN {
					st.open = false
					st.good = 0
				}
			}
		}
	}
	return out
}

// eval pushes the sample into the rule's window and computes its stat.
// ok is false while the window lacks enough data for the metric.
func (e *SLOEngine) eval(st *sloRuleState, s SLOSample) (stat float64, ok bool) {
	r := &st.ring
	switch st.rule.Metric {
	case SLOVdpP99:
		r.push(s.T, s.VDP)
		r.evict(s.T - st.rule.Window)
		if cap(e.scratch) < r.n {
			e.scratch = make([]float64, 0, 2*r.n)
		}
		e.scratch = e.scratch[:r.n]
		for i := 0; i < r.n; i++ {
			e.scratch[i] = r.v[(r.head+i)%len(r.v)]
		}
		sort.Float64s(e.scratch)
		// nearest-rank p99
		idx := (99*r.n + 99) / 100
		if idx > r.n {
			idx = r.n
		}
		return e.scratch[idx-1], true
	case SLOEnergyRate:
		r.push(s.T, s.EnergyJ)
		r.evict(s.T - st.rule.Window)
		t0, v0 := r.oldest()
		t1, v1 := r.newest()
		if t1 <= t0 {
			return 0, false
		}
		return (v1 - v0) / (t1 - t0), true
	case SLOStaleness:
		return s.Staleness, true
	case SLOHandoffRate:
		r.push(s.T, float64(s.Handoffs))
		r.evict(s.T - st.rule.Window)
		t0, v0 := r.oldest()
		t1, v1 := r.newest()
		if t1 <= t0 {
			return 0, false
		}
		return (v1 - v0) / (t1 - t0), true
	}
	return 0, false
}

// Breaches returns the bounded breach history.
func (e *SLOEngine) Breaches() []Breach {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Breach, len(e.history))
	copy(out, e.history)
	return out
}

// Health reports the engine's current judgment. Healthy means no rule
// is currently open; Ready additionally requires at least one observed
// sample (a mission that never started is unhealthy to route to). A nil
// engine is both healthy and ready: no rules, nothing to violate.
func (e *SLOEngine) Health() HealthStatus {
	if e == nil {
		return HealthStatus{Healthy: true, Ready: true}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	h := HealthStatus{Healthy: true, Samples: e.samples, Breaches: len(e.history)}
	for i := range e.rules {
		if e.rules[i].open {
			h.Healthy = false
			h.Open = append(h.Open, e.rules[i].rule.String())
		}
	}
	h.Ready = h.Healthy && e.samples > 0
	return h
}

// DefaultSLORules is the rule set behind `-slo default`: a VDP p99
// budget at the paper's safe-stop deadline scale, an EWMA anomaly
// detector on energy draw, a staleness ceiling just under the watchdog
// zone, and a handoff flap-rate bound.
func DefaultSLORules() []SLORule {
	return []SLORule{
		{Metric: SLOVdpP99, Mode: SLOBudget, Threshold: 0.5, Window: 30},
		{Metric: SLOEnergyRate, Mode: SLOAnom, Threshold: 3.0, Window: 20},
		{Metric: SLOStaleness, Mode: SLOBudget, Threshold: 1.0, Window: 5},
		{Metric: SLOHandoffRate, Mode: SLOBudget, Threshold: 0.5, Window: 30},
	}
}

// ParseSLORules parses a comma-separated -slo spec ("default" for
// DefaultSLORules).
func ParseSLORules(spec string) ([]SLORule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("empty SLO spec")
	}
	if spec == "default" {
		return DefaultSLORules(), nil
	}
	var out []SLORule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseSLORule(part)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty SLO spec")
	}
	return out, nil
}

func parseSLORule(s string) (SLORule, error) {
	var r SLORule
	body, win, ok := strings.Cut(s, "@")
	if !ok {
		return r, fmt.Errorf("rule %q: missing @window", s)
	}
	win = strings.TrimSuffix(strings.TrimSpace(win), "s")
	w, err := strconv.ParseFloat(win, 64)
	if err != nil || w <= 0 {
		return r, fmt.Errorf("rule %q: bad window %q", s, win)
	}
	r.Window = w
	var metric, thr string
	switch {
	case strings.Contains(body, "<="):
		r.Mode = SLOBudget
		metric, thr, _ = strings.Cut(body, "<=")
	case strings.Contains(body, "~"):
		r.Mode = SLOAnom
		metric, thr, _ = strings.Cut(body, "~")
	default:
		return r, fmt.Errorf("rule %q: want metric<=threshold or metric~factor", s)
	}
	r.Metric = strings.TrimSpace(metric)
	switch r.Metric {
	case SLOVdpP99, SLOEnergyRate, SLOStaleness, SLOHandoffRate:
	default:
		return r, fmt.Errorf("rule %q: unknown metric %q", s, r.Metric)
	}
	r.Threshold, err = strconv.ParseFloat(strings.TrimSpace(thr), 64)
	if err != nil {
		return r, fmt.Errorf("rule %q: bad threshold %q", s, thr)
	}
	if r.Mode == SLOAnom && r.Threshold <= 0 {
		return r, fmt.Errorf("rule %q: EWMA factor must be > 0", s)
	}
	return r, nil
}
