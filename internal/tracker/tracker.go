// Package tracker implements the Path Tracking node: a Dynamic Window /
// Trajectory Rollout local planner. It samples velocity commands inside
// the robot's dynamic window, forward-simulates one trajectory per
// sample, scores each against the global path, the goal, obstacle
// proximity and speed, discards infeasible trajectories, and emits the
// velocity of the best-scoring one.
//
// The paper identifies Path Tracking as both an Energy-Critical Node and
// the heart of the Velocity-Dependent Path, and accelerates it in the
// cloud by parallelizing the scoring loop over a thread pool (Fig. 5).
// PlanParallel is that algorithm: the M trajectories are partitioned
// into N blocks, each scored by a worker, and the arg-min is reduced
// deterministically.
package tracker

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/pool"
)

// Config parameterizes the tracker.
type Config struct {
	MaxV, MinV float64 // linear velocity limits, m/s
	MaxW       float64 // angular velocity limit, rad/s
	AccV, AccW float64 // acceleration limits for the dynamic window
	VSamples   int     // linear velocity samples
	WSamples   int     // angular velocity samples
	SimTime    float64 // forward simulation horizon, s
	SimDt      float64 // forward simulation step, s
	Period     float64 // control period (window extent), s

	GoalWeight     float64
	PathWeight     float64
	ObstacleWeight float64
	SpeedWeight    float64

	CarrotDist float64 // how far along the path the local goal sits, m
}

// DefaultConfig returns gains tuned for the Turtlebot3.
func DefaultConfig() Config {
	return Config{
		MaxV: 0.22, MinV: 0.0, MaxW: 2.0,
		AccV: 2.5, AccW: 3.2,
		VSamples: 10, WSamples: 20,
		SimTime: 1.2, SimDt: 0.1, Period: 0.2,
		GoalWeight: 1.0, PathWeight: 0.6, ObstacleWeight: 0.02, SpeedWeight: 0.3,
		CarrotDist: 0.8,
	}
}

// NumTrajectories returns M, the number of simulated trajectories.
func (c Config) NumTrajectories() int { return c.VSamples * c.WSamples }

// Input is one tracking invocation.
type Input struct {
	Pose    geom.Pose
	Vel     geom.Twist
	Path    []geom.Vec2      // global path from the planner
	Costmap *costmap.Costmap // current costmap
	MaxVCap float64          // dynamic cap from Eq. 2c (0 = no cap)
}

// Output is the tracking decision.
type Output struct {
	Cmd       geom.Twist // best velocity command
	Score     float64    // its cost (lower is better)
	Evaluated int        // trajectories simulated
	Discarded int        // trajectories discarded as infeasible
	Ops       int        // simulation steps executed (work measure)
}

// ErrAllBlocked means every sampled trajectory collides; the caller
// should stop and rotate toward the path (recovery behaviour).
var ErrAllBlocked = errors.New("tracker: all trajectories infeasible")

// Tracker holds the configuration plus the persistent-pool plumbing
// that lets the steady-state planning loop run allocation-free: one
// pre-built worker closure, reusable per-worker result slots, and the
// current invocation's parameters staged in a struct field. plan guards
// that staging area with a mutex, so a Tracker is safe to call from
// multiple goroutines (invocations serialize).
type Tracker struct {
	cfg Config

	mu      sync.Mutex
	pl      *pool.Pool
	runFn   func(w int)
	results []workerResult
	cur     struct {
		in         Input
		carrot     geom.Vec2
		m, threads int
		part       Partition
	}
}

// New returns a tracker.
func New(cfg Config) *Tracker {
	if cfg.VSamples < 1 || cfg.WSamples < 1 {
		panic(fmt.Sprintf("tracker: bad sample counts %dx%d", cfg.VSamples, cfg.WSamples))
	}
	t := &Tracker{cfg: cfg, pl: pool.Shared()}
	t.runFn = func(w int) { t.results[w] = t.scoreSpan(w) }
	return t
}

// Config returns the tracker configuration.
func (t *Tracker) Config() Config { return t.cfg }

// candidate enumerates sample i's velocity pair inside the dynamic
// window around the current velocity.
func (t *Tracker) candidate(i int, cur geom.Twist, maxV float64) geom.Twist {
	c := t.cfg
	vi, wi := i/c.WSamples, i%c.WSamples
	vLo := math.Max(c.MinV, cur.V-c.AccV*c.Period)
	vHi := math.Min(maxV, cur.V+c.AccV*c.Period)
	if vHi < vLo {
		vHi = vLo
	}
	wLo := math.Max(-c.MaxW, cur.W-c.AccW*c.Period)
	wHi := math.Min(c.MaxW, cur.W+c.AccW*c.Period)
	var v, w float64
	if c.VSamples == 1 {
		v = vLo
	} else {
		v = vLo + (vHi-vLo)*float64(vi)/float64(c.VSamples-1)
	}
	if c.WSamples == 1 {
		w = wLo
	} else {
		w = wLo + (wHi-wLo)*float64(wi)/float64(c.WSamples-1)
	}
	return geom.Twist{V: v, W: w}
}

// carrot returns the local goal: the path point CarrotDist beyond the
// closest point on the path to the robot.
func (t *Tracker) carrot(pose geom.Pose, path []geom.Vec2) geom.Vec2 {
	if len(path) == 0 {
		return pose.Pos
	}
	if len(path) == 1 {
		return path[0]
	}
	// Find the closest segment.
	bestD, bestI, bestPt := math.Inf(1), 0, path[0]
	for i := 0; i+1 < len(path); i++ {
		seg := geom.Segment{A: path[i], B: path[i+1]}
		pt := seg.ClosestPoint(pose.Pos)
		if d := pt.DistSq(pose.Pos); d < bestD {
			bestD, bestI, bestPt = d, i, pt
		}
	}
	// Walk CarrotDist forward from the closest point.
	remain := t.cfg.CarrotDist
	cur := bestPt
	for i := bestI; i+1 < len(path); i++ {
		end := path[i+1]
		d := cur.Dist(end)
		if d >= remain {
			return cur.Lerp(end, remain/d)
		}
		remain -= d
		cur = end
	}
	return path[len(path)-1]
}

// scoreOne simulates and scores candidate i. It returns the cost
// (+Inf if infeasible) and the number of simulation steps executed.
func (t *Tracker) scoreOne(i int, in Input, carrot geom.Vec2) (cost float64, steps int) {
	c := t.cfg
	maxV := c.MaxV
	if in.MaxVCap > 0 && in.MaxVCap < maxV {
		maxV = in.MaxVCap
	}
	tw := t.candidate(i, in.Vel, maxV)
	pose := in.Pose
	worstCell := uint8(0)
	n := int(c.SimTime / c.SimDt)
	for s := 0; s < n; s++ {
		pose = tw.Integrate(pose, c.SimDt)
		steps++
		fc := in.Costmap.FootprintCost(pose.Pos)
		if fc >= costmap.InscribedCost {
			return math.Inf(1), steps // collision or inside inscribed zone
		}
		if fc > worstCell {
			worstCell = fc
		}
	}
	goalDist := pose.Pos.Dist(carrot)
	pathDist := distToPath(pose.Pos, in.Path)
	return c.GoalWeight*goalDist +
		c.PathWeight*pathDist +
		c.ObstacleWeight*float64(worstCell) -
		c.SpeedWeight*tw.V, steps
}

func distToPath(p geom.Vec2, path []geom.Vec2) float64 {
	if len(path) == 0 {
		return 0
	}
	if len(path) == 1 {
		return p.Dist(path[0])
	}
	best := math.Inf(1)
	for i := 0; i+1 < len(path); i++ {
		if d := (geom.Segment{A: path[i], B: path[i+1]}).Dist(p); d < best {
			best = d
		}
	}
	return best
}

// Plan scores all trajectories serially and returns the best command.
func (t *Tracker) Plan(in Input) (Output, error) {
	return t.plan(in, 1, Block)
}

// Partition selects how PlanParallel splits trajectories over workers.
// It is the shared pool.Partition scheme: Block gives each worker a
// contiguous chunk (the paper's Fig. 5), Interleaved strides (ablation).
type Partition = pool.Partition

const (
	Block       = pool.Block
	Interleaved = pool.Interleaved
)

// PlanParallel scores trajectories with a pool of `threads` workers,
// implementing the paper's parallel path tracking (Fig. 5). The result
// is identical to Plan regardless of thread count or partitioning.
func (t *Tracker) PlanParallel(in Input, threads int, part Partition) (Output, error) {
	return t.plan(in, threads, part)
}

type workerResult struct {
	bestIdx  int
	bestCost float64
	steps    int
	discard  int
	eval     int
}

func (t *Tracker) plan(in Input, threads int, part Partition) (Output, error) {
	if in.Costmap == nil {
		return Output{}, errors.New("tracker: nil costmap")
	}
	m := t.cfg.NumTrajectories()
	if threads < 1 {
		threads = 1
	}
	if threads > m {
		threads = m
	}
	// Stage this invocation and fan out on the persistent pool. The
	// mutex makes the staged fields (cur, results) safe when callers
	// overlap; workers see them via the one pre-built closure.
	t.mu.Lock()
	defer t.mu.Unlock()
	if cap(t.results) < threads {
		t.results = make([]workerResult, threads)
	}
	t.results = t.results[:threads]
	t.cur.in, t.cur.carrot = in, t.carrot(in.Pose, in.Path)
	t.cur.m, t.cur.threads, t.cur.part = m, threads, part
	t.pl.Run(threads, t.runFn)
	t.cur.in = Input{} // drop references to the caller's path/costmap

	out := Output{Score: math.Inf(1)}
	bestIdx := -1
	for _, r := range t.results {
		out.Ops += r.steps
		out.Evaluated += r.eval
		out.Discarded += r.discard
		if r.bestIdx < 0 {
			continue
		}
		if r.bestCost < out.Score || (r.bestCost == out.Score && r.bestIdx < bestIdx) {
			out.Score, bestIdx = r.bestCost, r.bestIdx
		}
	}
	if bestIdx < 0 {
		return out, ErrAllBlocked
	}
	maxV := t.cfg.MaxV
	if in.MaxVCap > 0 && in.MaxVCap < maxV {
		maxV = in.MaxVCap
	}
	out.Cmd = t.candidate(bestIdx, in.Vel, maxV)
	return out, nil
}

// scoreSpan simulates and scores worker w's trajectory span, reducing to
// the span's arg-min. Assignment is positional (Partition.Bounds), so the
// final reduction over workers is deterministic for any thread count.
func (t *Tracker) scoreSpan(w int) workerResult {
	r := workerResult{bestIdx: -1, bestCost: math.Inf(1)}
	start, end, step := t.cur.part.Bounds(t.cur.m, t.cur.threads, w)
	for i := start; i < end; i += step {
		cost, steps := t.scoreOne(i, t.cur.in, t.cur.carrot)
		r.steps += steps
		r.eval++
		if math.IsInf(cost, 1) {
			r.discard++
			continue
		}
		if cost < r.bestCost || (cost == r.bestCost && i < r.bestIdx) {
			r.bestCost, r.bestIdx = cost, i
		}
	}
	return r
}

// RecoveryCmd returns the in-place rotation used when all trajectories
// are blocked: rotate toward the carrot point.
func (t *Tracker) RecoveryCmd(pose geom.Pose, path []geom.Vec2) geom.Twist {
	target := t.carrot(pose, path)
	bearing := geom.AngleDiff(target.Sub(pose.Pos).Angle(), pose.Theta)
	w := geom.Clamp(bearing*2, -t.cfg.MaxW, t.cfg.MaxW)
	if math.Abs(w) < 0.3 {
		if w >= 0 {
			w = 0.3
		} else {
			w = -0.3
		}
	}
	return geom.Twist{V: 0, W: w}
}
