package tracker

import (
	"math"
	"testing"

	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/world"
)

func openCostmap() *costmap.Costmap {
	m := world.EmptyRoomMap(8, 8, 0.05)
	cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	c := costmap.New(cfg)
	c.SetStatic(m)
	return c
}

func straightInput(cm *costmap.Costmap) Input {
	return Input{
		Pose:    geom.P(2, 4, 0),
		Vel:     geom.Twist{V: 0.1},
		Path:    []geom.Vec2{geom.V(2, 4), geom.V(6, 4)},
		Costmap: cm,
	}
}

func TestPlanDrivesTowardGoal(t *testing.T) {
	tr := New(DefaultConfig())
	out, err := tr.Plan(straightInput(openCostmap()))
	if err != nil {
		t.Fatal(err)
	}
	if out.Cmd.V <= 0 {
		t.Errorf("should drive forward, v = %v", out.Cmd.V)
	}
	if math.Abs(out.Cmd.W) > 0.5 {
		t.Errorf("straight path should need little turning, w = %v", out.Cmd.W)
	}
	if out.Evaluated != tr.Config().NumTrajectories() {
		t.Errorf("evaluated %d of %d", out.Evaluated, tr.Config().NumTrajectories())
	}
	if out.Ops == 0 {
		t.Error("no work accounted")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	tr := New(DefaultConfig())
	in := straightInput(openCostmap())
	serial, err := tr.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 3, 4, 8, 16} {
		for _, part := range []Partition{Block, Interleaved} {
			par, err := tr.PlanParallel(in, threads, part)
			if err != nil {
				t.Fatalf("threads=%d: %v", threads, err)
			}
			if par.Cmd != serial.Cmd {
				t.Errorf("threads=%d part=%v: cmd %v != serial %v", threads, part, par.Cmd, serial.Cmd)
			}
			if par.Score != serial.Score {
				t.Errorf("threads=%d: score %v != %v", threads, par.Score, serial.Score)
			}
			if par.Evaluated != serial.Evaluated || par.Ops != serial.Ops {
				t.Errorf("threads=%d: work accounting differs", threads)
			}
		}
	}
}

func TestObstacleAvoidance(t *testing.T) {
	m := world.EmptyRoomMap(8, 8, 0.05)
	// Wall directly ahead of the robot, just within the rollout horizon
	// (robot at x=2, max travel ≈ 0.27 m, wall at x = 2.3).
	for y := 70; y < 90; y++ {
		for x := 46; x < 50; x++ {
			m.Set(geom.Cell{X: x, Y: y}, grid.Occupied)
		}
	}
	cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	cm := costmap.New(cfg)
	cm.SetStatic(m)

	tr := New(DefaultConfig())
	in := Input{
		Pose:    geom.P(2, 4, 0),
		Vel:     geom.Twist{V: 0.2},
		Path:    []geom.Vec2{geom.V(2, 4), geom.V(6, 4)},
		Costmap: cm,
	}
	out, err := tr.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Discarded == 0 {
		t.Error("trajectories into the wall should be discarded")
	}
	// The chosen command must not lead straight into the wall: simulate it.
	pose := in.Pose
	for s := 0; s < 12; s++ {
		pose = out.Cmd.Integrate(pose, 0.1)
		if cm.FootprintCost(pose.Pos) >= costmap.LethalCost {
			t.Fatalf("chosen command collides at %v", pose)
		}
	}
}

func TestAllBlockedReturnsError(t *testing.T) {
	m := world.EmptyRoomMap(2, 2, 0.05)
	// Box the robot in so tightly that its footprint already overlaps the
	// inscribed inflation zone — even rotating in place is infeasible.
	for y := 17; y <= 23; y++ {
		for x := 17; x <= 23; x++ {
			if x == 17 || x == 23 || y == 17 || y == 23 {
				m.Set(geom.Cell{X: x, Y: y}, grid.Occupied)
			}
		}
	}
	cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	cfg.InflationRadius = 0.3
	cm := costmap.New(cfg)
	cm.SetStatic(m)
	tr := New(DefaultConfig())
	in := Input{
		Pose:    geom.P(1, 1, 0),
		Vel:     geom.Twist{V: 0.2},
		Path:    []geom.Vec2{geom.V(1, 1), geom.V(1.8, 1)},
		Costmap: cm,
	}
	_, err := tr.Plan(in)
	if err != ErrAllBlocked {
		t.Fatalf("err = %v, want ErrAllBlocked", err)
	}
}

func TestMaxVCapRespected(t *testing.T) {
	tr := New(DefaultConfig())
	in := straightInput(openCostmap())
	in.Vel = geom.Twist{V: 0.2}
	in.MaxVCap = 0.05
	out, err := tr.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cmd.V > 0.05+1e-9 {
		t.Errorf("command %v exceeds cap 0.05", out.Cmd.V)
	}
}

func TestHigherCapAllowsFasterCommand(t *testing.T) {
	tr := New(DefaultConfig())
	cm := openCostmap()
	slow, fast := straightInput(cm), straightInput(cm)
	slow.MaxVCap = 0.05
	fast.MaxVCap = 0.22
	so, err := tr.Plan(slow)
	if err != nil {
		t.Fatal(err)
	}
	fo, err := tr.Plan(fast)
	if err != nil {
		t.Fatal(err)
	}
	if fo.Cmd.V <= so.Cmd.V {
		t.Errorf("higher cap should give faster command: %v vs %v", fo.Cmd.V, so.Cmd.V)
	}
}

func TestCarrotFollowsPath(t *testing.T) {
	tr := New(DefaultConfig())
	path := []geom.Vec2{geom.V(0, 0), geom.V(2, 0), geom.V(2, 2)}
	// Robot at origin: carrot should be CarrotDist along the path.
	c := tr.carrot(geom.P(0, 0, 0), path)
	if c.Dist(geom.V(0.8, 0)) > 1e-9 {
		t.Errorf("carrot = %v, want (0.8, 0)", c)
	}
	// Robot near the corner: carrot wraps around it.
	c = tr.carrot(geom.P(1.9, 0, 0), path)
	if c.X != 2 || c.Y < 0.5 {
		t.Errorf("carrot after corner = %v", c)
	}
	// Near the end: carrot clamps to the final point.
	c = tr.carrot(geom.P(2, 1.9, 0), path)
	if c.Dist(geom.V(2, 2)) > 1e-9 {
		t.Errorf("carrot at end = %v", c)
	}
	// Empty and single-point paths.
	if got := tr.carrot(geom.P(1, 1, 0), nil); got != geom.V(1, 1) {
		t.Errorf("empty path carrot = %v", got)
	}
	if got := tr.carrot(geom.P(1, 1, 0), []geom.Vec2{geom.V(5, 5)}); got != geom.V(5, 5) {
		t.Errorf("single point carrot = %v", got)
	}
}

func TestTurnTowardOffAxisPath(t *testing.T) {
	tr := New(DefaultConfig())
	cm := openCostmap()
	in := Input{
		Pose:    geom.P(4, 4, 0), // facing +x
		Vel:     geom.Twist{},
		Path:    []geom.Vec2{geom.V(4, 4), geom.V(4, 7)}, // path goes +y
		Costmap: cm,
	}
	out, err := tr.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cmd.W <= 0 {
		t.Errorf("should turn left toward +y path, w = %v", out.Cmd.W)
	}
}

func TestRecoveryCmdRotatesTowardPath(t *testing.T) {
	tr := New(DefaultConfig())
	// Path is behind the robot (at bearing π): recovery should rotate.
	cmd := tr.RecoveryCmd(geom.P(4, 4, 0), []geom.Vec2{geom.V(2, 4)})
	if cmd.V != 0 {
		t.Error("recovery must not translate")
	}
	if cmd.W == 0 {
		t.Error("recovery must rotate")
	}
	// Path to the left: positive rotation.
	cmd = tr.RecoveryCmd(geom.P(4, 4, 0), []geom.Vec2{geom.V(4, 6)})
	if cmd.W <= 0 {
		t.Errorf("should rotate left, w = %v", cmd.W)
	}
}

func TestNilCostmapError(t *testing.T) {
	tr := New(DefaultConfig())
	if _, err := tr.Plan(Input{}); err == nil {
		t.Error("nil costmap must error")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero samples should panic")
		}
	}()
	New(Config{VSamples: 0, WSamples: 5})
}

func BenchmarkPlanSerial(b *testing.B) {
	tr := New(DefaultConfig())
	in := straightInput(openCostmap())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Plan(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanParallel4(b *testing.B) {
	tr := New(DefaultConfig())
	in := straightInput(openCostmap())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.PlanParallel(in, 4, Block); err != nil {
			b.Fatal(err)
		}
	}
}
