package vo

import (
	"math/rand"
	"testing"

	"lgvoffload/internal/geom"
)

// drive runs the tracker along a straight line at the given speed and
// returns final error and loss count.
func drive(t *testing.T, speed, omega float64, seconds float64, seed int64) (errDist float64, losses int) {
	t.Helper()
	v := New(DefaultConfig(), rand.New(rand.NewSource(seed)))
	dt := 0.1
	truth := geom.P(0, 0, 0)
	for tt := 0.0; tt < seconds; tt += dt {
		next := geom.Twist{V: speed, W: omega}.Integrate(truth, dt)
		delta := truth.Delta(next)
		truth = next
		v.Update(delta, speed, omega, dt)
	}
	return v.Estimate().Pos.Dist(geom.P(0, 0, 0).Delta(truth).Pos), v.Losses()
}

func TestSlowMotionKeepsTracking(t *testing.T) {
	err, losses := drive(t, 0.2, 0, 60, 1)
	if losses != 0 {
		t.Errorf("slow straight drive lost tracking %d times", losses)
	}
	if err > 0.5 {
		t.Errorf("tracked drift %v m too large", err)
	}
}

func TestFastMotionLosesTracking(t *testing.T) {
	_, losses := drive(t, 0.8, 0, 60, 2)
	if losses == 0 {
		t.Error("fast drive should lose tracking")
	}
}

func TestErrorGrowsWithSpeed(t *testing.T) {
	slowErr, _ := drive(t, 0.2, 0, 60, 3)
	fastErr, _ := drive(t, 0.9, 0, 60, 3)
	if fastErr <= slowErr {
		t.Errorf("fast error %v should exceed slow error %v", fastErr, slowErr)
	}
}

func TestTurningLowersSafeSpeed(t *testing.T) {
	v := New(DefaultConfig(), rand.New(rand.NewSource(1)))
	straight := v.SafeSpeed(0)
	turning := v.SafeSpeed(0.6)
	if turning >= straight {
		t.Errorf("turning safe speed %v should be below straight %v", turning, straight)
	}
	if v.SafeSpeed(10) != 0 {
		t.Error("extreme rotation should force a stop")
	}
}

func TestRelocalizationAfterSlowing(t *testing.T) {
	cfg := DefaultConfig()
	v := New(cfg, rand.New(rand.NewSource(4)))
	dt := 0.1
	// Blast until tracking lost.
	for i := 0; i < 600 && v.Tracking(); i++ {
		v.Update(geom.P(0.08, 0, 0), 0.8, 0, dt)
	}
	if v.Tracking() {
		t.Fatal("never lost tracking")
	}
	// Creep slowly; must re-acquire after RelocalizeAfter.
	for i := 0; i < int(cfg.RelocalizeAfter/dt)+2; i++ {
		v.Update(geom.P(0.005, 0, 0), 0.05, 0, dt)
	}
	if !v.Tracking() {
		t.Error("did not relocalize after slowing down")
	}
}

func TestFastMotionResetsRelocTimer(t *testing.T) {
	cfg := DefaultConfig()
	v := New(cfg, rand.New(rand.NewSource(5)))
	v.tracking = false
	dt := 0.1
	// Alternate slow and fast: the slow timer must reset.
	for i := 0; i < 50; i++ {
		v.Update(geom.P(0.005, 0, 0), 0.05, 0, dt) // slow
		v.Update(geom.P(0.08, 0, 0), 0.8, 0, dt)   // fast again
	}
	if v.Tracking() {
		t.Error("interrupted slowdowns must not relocalize")
	}
}

func TestFlow(t *testing.T) {
	v := New(DefaultConfig(), rand.New(rand.NewSource(1)))
	if v.Flow(0.2, 0) != 0.2 {
		t.Error("pure translation flow")
	}
	if v.Flow(0.2, 0.4) <= v.Flow(0.2, 0) {
		t.Error("rotation must add flow")
	}
}
