// Package vo implements the §IX extension for vision-based LGVs: a
// feature-tracking visual localization surrogate. A vision-based robot
// estimates its pose by tracking points across successive camera frames;
// fast motion (high linear or angular velocity) blurs and shears the
// features, tracking fails, and the robot must slow down and re-acquire.
// The paper's claim — "a slower speed is needed to prevent the
// localization failure due to the high rate of environment changes" —
// becomes measurable: loss rate and pose error as functions of speed.
//
// The model is deliberately behavioural, not photometric: tracking
// quality is a function of the optical-flow magnitude (v + k·ω), failure
// is stochastic above the blur limit, drift accrues per meter traveled
// (faster while lost), and re-acquisition needs a sustained slow period.
package vo

import (
	"math"
	"math/rand"

	"lgvoffload/internal/geom"
)

// Config parameterizes the tracker.
type Config struct {
	// BlurLimit is the optical-flow magnitude (m/s equivalent) above
	// which tracking starts to fail; TurnWeight converts rad/s of
	// rotation into equivalent translational flow (rotation blurs much
	// more than translation for a forward camera).
	BlurLimit  float64
	TurnWeight float64

	// LossRatePerSec is the probability per second of losing tracking
	// when the flow reaches 2× the blur limit (scales linearly in the
	// excess).
	LossRatePerSec float64

	// RelocalizeAfter is the sustained slow-motion time needed to
	// re-acquire tracking once lost.
	RelocalizeAfter float64

	// DriftPerMeter is the translational error accrued per meter while
	// tracking; LostDriftPerMeter applies while dead-reckoning.
	DriftPerMeter     float64
	LostDriftPerMeter float64
}

// DefaultConfig models a forward monocular camera on a small robot.
func DefaultConfig() Config {
	return Config{
		BlurLimit:         0.35,
		TurnWeight:        0.5,
		LossRatePerSec:    2.0,
		RelocalizeAfter:   1.0,
		DriftPerMeter:     0.01,
		LostDriftPerMeter: 0.15,
	}
}

// VO is the visual odometry state.
type VO struct {
	cfg Config
	rng *rand.Rand

	est      geom.Pose
	tracking bool
	slowFor  float64
	losses   int
	traveled float64
}

// New returns a tracker that starts localized at the origin of its own
// frame.
func New(cfg Config, rng *rand.Rand) *VO {
	return &VO{cfg: cfg, rng: rng, tracking: true}
}

// Flow returns the optical-flow magnitude for a speed/turn-rate pair.
func (v *VO) Flow(speed, omega float64) float64 {
	return math.Abs(speed) + v.cfg.TurnWeight*math.Abs(omega)
}

// SafeSpeed returns the highest linear speed that keeps the flow under
// the blur limit at the given turn rate — the vision analog of Eq. 2c's
// velocity cap.
func (v *VO) SafeSpeed(omega float64) float64 {
	s := v.cfg.BlurLimit - v.cfg.TurnWeight*math.Abs(omega)
	if s < 0 {
		return 0
	}
	return s
}

// Update advances the tracker by one control period: trueDelta is the
// robot's actual motion, speed/omega its commanded velocities. It
// returns the current pose estimate and whether tracking is alive.
func (v *VO) Update(trueDelta geom.Pose, speed, omega, dt float64) (geom.Pose, bool) {
	dist := trueDelta.Pos.Norm()
	v.traveled += dist
	flow := v.Flow(speed, omega)

	if v.tracking {
		// Stochastic loss above the blur limit.
		if flow > v.cfg.BlurLimit && v.cfg.BlurLimit > 0 {
			excess := (flow - v.cfg.BlurLimit) / v.cfg.BlurLimit
			pLoss := v.cfg.LossRatePerSec * excess * dt
			if v.rng.Float64() < pLoss {
				v.tracking = false
				v.losses++
				v.slowFor = 0
			}
		}
	} else {
		// Re-acquisition requires sustained slow motion.
		if flow < v.cfg.BlurLimit/2 {
			v.slowFor += dt
			if v.slowFor >= v.cfg.RelocalizeAfter {
				v.tracking = true
			}
		} else {
			v.slowFor = 0
		}
	}

	drift := v.cfg.DriftPerMeter
	if !v.tracking {
		drift = v.cfg.LostDriftPerMeter
	}
	noisy := trueDelta
	noisy.Pos.X += v.rng.NormFloat64() * drift * dist
	noisy.Pos.Y += v.rng.NormFloat64() * drift * dist
	noisy.Theta = geom.NormalizeAngle(noisy.Theta + v.rng.NormFloat64()*drift*dist)
	v.est = v.est.Compose(noisy)
	return v.est, v.tracking
}

// Estimate returns the current pose estimate.
func (v *VO) Estimate() geom.Pose { return v.est }

// Tracking reports whether features are currently tracked.
func (v *VO) Tracking() bool { return v.tracking }

// Losses returns how many times tracking has been lost.
func (v *VO) Losses() int { return v.losses }

// Traveled returns the distance integrated so far.
func (v *VO) Traveled() float64 { return v.traveled }
