// Package pool provides the persistent worker pool behind the paper's
// Fig. 5/6 acceleration. The paper's server keeps a thread pool alive
// across control ticks; the original Go port instead spawned fresh
// goroutines inside every PlanParallel/UpdateParallel call, so the 5 Hz
// steady state paid fork/join churn on each tick. A Pool pins a fixed
// set of workers that park on per-worker channels between calls: Run
// hands the same closure to workers 0..threads-1 and blocks until all
// finish, so a caller that pre-builds its closure and reuses per-worker
// result slots runs the whole parallel section without allocating.
//
// Determinism: work is assigned by worker *index*, never by which
// goroutine grabs a queue first. Partition.Bounds gives worker w a fixed
// index set for any (n, threads), and reductions iterate results in
// worker order, so a pooled kernel is byte-identical to its serial
// counterpart for any thread count — the documented guarantee of the
// parallel SLAM and tracking kernels.
package pool

import "sync"

// Partition selects how n work items are split across workers. It is the
// shared definition behind slam.Partition and tracker.Partition.
type Partition int

const (
	// Block assigns each worker a contiguous index range (Fig. 5/6).
	Block Partition = iota
	// Interleaved strides indices across workers (ablation).
	Interleaved
)

// Bounds returns worker w's iteration over [0, n) as a start/end/step
// triple: `for i := start; i < end; i += step`. Every index is covered by
// exactly one worker, and the assignment depends only on (n, threads, w).
func (p Partition) Bounds(n, threads, w int) (start, end, step int) {
	if p == Interleaved {
		return w, n, threads
	}
	return w * n / threads, (w + 1) * n / threads, 1
}

// Pool is a set of persistent pinned workers. The zero value is ready to
// use: workers are spawned lazily the first time Run needs them and then
// reused across calls. Run serializes callers, so a Pool may be shared
// between kernels (the engine's tracker and SLAM share one), but a Run
// closure must never re-enter Run on the same pool.
type Pool struct {
	mu   sync.Mutex
	work []chan func(int)
	wg   sync.WaitGroup
}

// New returns a pool with capacity for the given number of workers
// (grown later if a Run asks for more).
func New(threads int) *Pool {
	p := &Pool{}
	p.mu.Lock()
	p.grow(threads)
	p.mu.Unlock()
	return p
}

// Size returns the current worker count.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.work)
}

// grow spawns workers until the pool has n. Caller holds p.mu.
func (p *Pool) grow(n int) {
	for len(p.work) < n {
		w := len(p.work)
		ch := make(chan func(int), 1)
		p.work = append(p.work, ch)
		go p.worker(w, ch)
	}
}

func (p *Pool) worker(w int, ch chan func(int)) {
	for fn := range ch {
		fn(w)
		p.wg.Done()
	}
}

// Run executes fn(w) for every worker index w in [0, threads) and
// returns when all have finished. threads <= 1 runs fn(0) on the calling
// goroutine without touching the pool, so serial paths stay free of any
// synchronization. fn must not call Run on the same pool.
func (p *Pool) Run(threads int, fn func(w int)) {
	if threads <= 1 {
		fn(0)
		return
	}
	p.mu.Lock()
	p.grow(threads)
	p.wg.Add(threads)
	for w := 0; w < threads; w++ {
		p.work[w] <- fn
	}
	p.wg.Wait()
	p.mu.Unlock()
}

// Close stops the pool's workers. A later Run respawns them, so Close is
// an idle-resource release, not an end-of-life.
func (p *Pool) Close() {
	p.mu.Lock()
	for _, ch := range p.work {
		close(ch)
	}
	p.work = nil
	p.mu.Unlock()
}

var (
	sharedMu sync.Mutex
	shared   *Pool
)

// Shared returns the process-wide pool that the SLAM and tracking
// kernels (and through them the engine and the offload worker) use by
// default. Sharing one pool bounds the goroutine count no matter how
// many filters or missions a process creates, at the cost of
// serializing overlapping parallel sections — which preserves
// correctness and determinism, since work assignment is positional.
func Shared() *Pool {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if shared == nil {
		shared = &Pool{}
	}
	return shared
}
