package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBoundsCoverEveryIndexOnce(t *testing.T) {
	for _, part := range []Partition{Block, Interleaved} {
		for _, n := range []int{0, 1, 2, 7, 16, 100, 101} {
			for _, threads := range []int{1, 2, 3, 4, 8} {
				if threads > n && n > 0 {
					continue
				}
				seen := make([]int, n)
				for w := 0; w < threads; w++ {
					start, end, step := part.Bounds(n, threads, w)
					for i := start; i < end; i += step {
						if i < 0 || i >= n {
							t.Fatalf("part=%v n=%d threads=%d w=%d: index %d out of range", part, n, threads, w, i)
						}
						seen[i]++
					}
				}
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("part=%v n=%d threads=%d: index %d covered %d times", part, n, threads, i, c)
					}
				}
			}
		}
	}
}

func TestRunExecutesEveryWorker(t *testing.T) {
	p := New(4)
	defer p.Close()
	var hits [8]atomic.Int64
	p.Run(8, func(w int) { hits[w].Add(1) })
	for w := range hits {
		if hits[w].Load() != 1 {
			t.Errorf("worker %d ran %d times", w, hits[w].Load())
		}
	}
	if p.Size() != 8 {
		t.Errorf("pool grew to %d, want 8", p.Size())
	}
}

func TestRunSerialInline(t *testing.T) {
	var p Pool // zero value, no workers
	ran := false
	p.Run(1, func(w int) {
		if w != 0 {
			t.Errorf("serial worker index = %d", w)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn not run")
	}
	if p.Size() != 0 {
		t.Errorf("serial Run spawned %d workers", p.Size())
	}
}

// TestReuseAcrossTicks drives the pool the way the engine does — one Run
// per control tick, same closure, thread count varying as the adaptive
// controller sheds and restores parallelism — under -race.
func TestReuseAcrossTicks(t *testing.T) {
	p := New(2)
	defer p.Close()
	sums := make([]int, 8)
	var tick int
	fn := func(w int) { sums[w] += tick }
	for tick = 1; tick <= 200; tick++ {
		threads := 1 << (tick % 4) // 1, 2, 4, 8
		for w := range sums[:threads] {
			sums[w] = 0
		}
		p.Run(threads, fn)
		for w := 0; w < threads; w++ {
			if sums[w] != tick {
				t.Fatalf("tick %d worker %d: sum %d", tick, w, sums[w])
			}
		}
	}
}

// TestConcurrentRuns checks that a shared pool serializes overlapping
// parallel sections without losing or duplicating work.
func TestConcurrentRuns(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				p.Run(4, func(w int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 8*50*4 {
		t.Fatalf("total = %d, want %d", got, 8*50*4)
	}
}

func TestCloseThenRunRespawns(t *testing.T) {
	p := New(2)
	p.Close()
	if p.Size() != 0 {
		t.Fatalf("size after close = %d", p.Size())
	}
	var n atomic.Int64
	p.Run(3, func(w int) { n.Add(1) })
	if n.Load() != 3 {
		t.Fatalf("ran %d workers after close", n.Load())
	}
	p.Close()
}

func TestSharedIsSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared returned different pools")
	}
}
