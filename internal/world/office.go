package world

import (
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
)

// OfficeMap generates an office floor: a central corridor with `rooms`
// rooms on each side, each roomW×roomD meters, connected to the corridor
// through doorways at deterministic-random positions. Office floors are
// the environment class the paper's delivery scenario implies — long
// straight corridor segments (where the real velocity reaches the cap)
// punctuated by doorway turns (where it does not).
func OfficeMap(rooms int, roomW, roomD, corridorW, res float64, rng *rand.Rand) *grid.Map {
	if rooms < 1 {
		rooms = 1
	}
	const wallM = 0.1
	doorM := 0.8

	widthM := float64(rooms)*(roomW+wallM) + wallM
	heightM := 2*(roomD+wallM) + corridorW
	w := int(widthM / res)
	h := int(heightM / res)
	m := grid.NewMap(w, h, res, geom.V(0, 0), grid.Free)

	wallPx := maxInt(1, int(wallM/res))
	fill := func(x0, y0, x1, y1 float64) {
		a := m.WorldToCell(geom.V(x0, y0))
		b := m.WorldToCell(geom.V(x1, y1))
		for y := a.Y; y <= b.Y && y < h; y++ {
			for x := a.X; x <= b.X && x < w; x++ {
				if x >= 0 && y >= 0 {
					m.Set(geom.Cell{X: x, Y: y}, grid.Occupied)
				}
			}
		}
	}
	_ = wallPx

	// Outer walls.
	fill(0, 0, widthM, wallM)
	fill(0, heightM-wallM, widthM, heightM)
	fill(0, 0, wallM, heightM)
	fill(widthM-wallM, 0, widthM, heightM)

	// Corridor walls (bottom rooms below, top rooms above) with doors.
	corridorY0 := roomD + wallM
	corridorY1 := corridorY0 + corridorW
	for side := 0; side < 2; side++ {
		wallY0 := corridorY0 - wallM
		wallY1 := corridorY0
		if side == 1 {
			wallY0 = corridorY1
			wallY1 = corridorY1 + wallM
		}
		for r := 0; r < rooms; r++ {
			x0 := wallM + float64(r)*(roomW+wallM)
			x1 := x0 + roomW
			// Door position within the room frontage.
			doorAt := x0 + 0.2 + rng.Float64()*(roomW-doorM-0.4)
			fill(x0-wallM, wallY0, doorAt, wallY1)
			fill(doorAt+doorM, wallY0, x1+wallM, wallY1)
			// Partition wall between adjacent rooms.
			roomY0, roomY1 := wallM, roomD+wallM
			if side == 1 {
				roomY0, roomY1 = corridorY1+wallM, heightM-wallM
			}
			if r > 0 {
				fill(x0-wallM, roomY0, x0, roomY1)
			}
		}
	}
	return m
}

// OfficeCorridorY returns the y coordinate of the corridor centerline
// for an office built with the same parameters.
func OfficeCorridorY(roomD, corridorW float64) float64 {
	const wallM = 0.1
	return roomD + wallM + corridorW/2
}

// OfficeRoomCenter returns the center of room r on the given side
// (0 = bottom, 1 = top).
func OfficeRoomCenter(r, side int, roomW, roomD, corridorW float64) geom.Vec2 {
	const wallM = 0.1
	x := wallM + float64(r)*(roomW+wallM) + roomW/2
	if side == 0 {
		return geom.V(x, wallM+roomD/2)
	}
	return geom.V(x, roomD+2*wallM+corridorW+roomD/2)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
