// Package world simulates the physical environment of a Low-cost Ground
// Vehicle: a static occupancy map, a differential-drive robot with
// acceleration limits and traction physics, and discrete-time stepping.
//
// The physics follows the paper's motor model (Eq. 1d): traction force
// m(a + gμ) while moving, converted to mechanical power P = F·v plus a
// constant transforming loss P_l. The world is the ground truth that
// sensors observe and against which collisions are checked.
package world

import (
	"fmt"
	"math"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
)

// RobotSpec holds the mechanical characteristics of an LGV. The defaults
// (Turtlebot3 Burger) match the paper's platform.
type RobotSpec struct {
	Name       string
	Mass       float64 // kg
	Radius     float64 // footprint radius, m
	MaxV       float64 // hardware velocity cap, m/s
	MaxW       float64 // hardware angular velocity cap, rad/s
	MaxAccel   float64 // m/s²
	MaxWAccel  float64 // rad/s²
	Friction   float64 // ground friction constant μ
	StopDist   float64 // required stopping distance d for obstacle avoidance, m
	TransfLoss float64 // motor transforming loss P_l, W
}

// Turtlebot3 returns the spec of the paper's evaluation vehicle.
//
// Friction is an *effective* lumped coefficient: it folds rolling
// friction together with gearbox and motor-conversion losses, calibrated
// so the Eq. 1d traction power reaches the Table I motor maximum
// (≈6.7 W) near the stock 0.22 m/s top speed — the same calibration the
// paper inherits from its power-model references [34], [52]. The purely
// physical rolling-friction value (~0.04) would make motor energy
// negligible, contradicting Table I's measured 44% motor share.
func Turtlebot3() RobotSpec {
	return RobotSpec{
		Name:       "Turtlebot3",
		Mass:       1.8,
		Radius:     0.105,
		MaxV:       0.22 * 5, // hardware cap is lifted in the paper by offloading; allow up to 5× stock
		MaxW:       2.84,
		MaxAccel:   2.5,
		MaxWAccel:  3.2,
		Friction:   1.5,
		StopDist:   0.25,
		TransfLoss: 1.0,
	}
}

// Gravity is the standard gravity constant used by the traction model.
const Gravity = 9.81

// TractionPower returns the instantaneous mechanical motor power (W) for
// the given velocity and acceleration per Eq. 1d: P = P_l + m(a + gμ)v.
// A stationary robot draws no traction power (P_l applies only while the
// motors are energized by a nonzero velocity command).
func (s RobotSpec) TractionPower(v, a float64) float64 {
	v = math.Abs(v)
	if v < 1e-9 {
		return 0
	}
	f := s.Mass * (math.Max(a, 0) + Gravity*s.Friction)
	return s.TransfLoss + f*v
}

// Robot is the simulated vehicle state.
type Robot struct {
	Spec RobotSpec
	Pose geom.Pose
	Vel  geom.Twist // current body velocity

	cmd geom.Twist // last commanded velocity

	// Odometry integration (what wheel encoders would report), which
	// accumulates the commanded motion without knowledge of collisions.
	Odom geom.Pose

	distance float64 // total distance traveled, m
	collided bool
}

// World is the complete simulation state.
type World struct {
	Map   *grid.Map
	Robot Robot
	Time  float64 // simulated seconds since start
}

// New creates a world with the robot at the given start pose.
func New(m *grid.Map, spec RobotSpec, start geom.Pose) *World {
	return &World{
		Map: m,
		Robot: Robot{
			Spec: spec,
			Pose: start,
			Odom: geom.Pose{}, // odometry frame starts at identity
		},
	}
}

// SetCommand sets the robot's commanded velocity. The command is clamped
// to the hardware caps; acceleration limits are applied during Step.
func (w *World) SetCommand(t geom.Twist) {
	t.V = geom.Clamp(t.V, -w.Robot.Spec.MaxV, w.Robot.Spec.MaxV)
	t.W = geom.Clamp(t.W, -w.Robot.Spec.MaxW, w.Robot.Spec.MaxW)
	w.Robot.cmd = t
}

// Command returns the currently commanded velocity.
func (w *World) Command() geom.Twist { return w.Robot.cmd }

// StepResult reports what happened during one simulation step.
type StepResult struct {
	Moved      float64 // distance traveled this step, m
	Accel      float64 // linear acceleration applied, m/s²
	MotorPower float64 // instantaneous traction power, W
	Collided   bool    // robot hit an obstacle this step
}

// Step advances the simulation by dt seconds: ramps the velocity toward
// the command under acceleration limits, integrates the pose along the
// unicycle arc, checks for collision (in which case the robot stops at its
// pre-step position), and accumulates odometry.
func (w *World) Step(dt float64) StepResult {
	if dt <= 0 {
		return StepResult{}
	}
	r := &w.Robot
	// Ramp toward command.
	dv := geom.Clamp(r.cmd.V-r.Vel.V, -r.Spec.MaxAccel*dt, r.Spec.MaxAccel*dt)
	dw := geom.Clamp(r.cmd.W-r.Vel.W, -r.Spec.MaxWAccel*dt, r.Spec.MaxWAccel*dt)
	accel := dv / dt
	r.Vel.V += dv
	r.Vel.W += dw

	next := r.Vel.Integrate(r.Pose, dt)
	moved := next.Pos.Dist(r.Pose.Pos)
	collided := w.collides(next)
	if collided {
		// Robot stops dead against the obstacle.
		r.Vel = geom.Twist{}
		moved = 0
	} else {
		// Odometry integrates the same motion in the odom frame.
		r.Odom = r.Vel.Integrate(r.Odom, dt)
		r.Pose = next
		r.distance += moved
	}
	r.collided = collided
	w.Time += dt
	return StepResult{
		Moved:      moved,
		Accel:      accel,
		MotorPower: r.Spec.TractionPower(r.Vel.V, accel),
		Collided:   collided,
	}
}

// collides reports whether the robot footprint at pose p overlaps an
// occupied or out-of-map cell. The footprint is sampled as a disc.
func (w *World) collides(p geom.Pose) bool {
	return FootprintCollides(w.Map, p.Pos, w.Robot.Spec.Radius)
}

// FootprintCollides checks a disc footprint of the given radius centered
// at pos against the map. Unknown cells are not collisions (the physical
// world has no unknowns; this is used with ground-truth maps). A cell
// collides when any part of its square intersects the disc — the check
// uses the closest point on the cell rectangle, so coarse grids cannot
// hide an obstacle between cell centers.
func FootprintCollides(m *grid.Map, pos geom.Vec2, radius float64) bool {
	cr := int(math.Ceil(radius/m.Resolution)) + 1
	center := m.WorldToCell(pos)
	r2 := radius * radius
	half := m.Resolution / 2
	for dy := -cr; dy <= cr; dy++ {
		for dx := -cr; dx <= cr; dx++ {
			c := geom.Cell{X: center.X + dx, Y: center.Y + dy}
			cw := m.CellToWorld(c)
			closest := geom.V(
				geom.Clamp(pos.X, cw.X-half, cw.X+half),
				geom.Clamp(pos.Y, cw.Y-half, cw.Y+half),
			)
			if closest.DistSq(pos) > r2 {
				continue
			}
			if !m.InBounds(c) || m.At(c) == grid.Occupied {
				return true
			}
		}
	}
	return false
}

// Distance returns the total distance the robot has traveled.
func (w *World) Distance() float64 { return w.Robot.distance }

// Collided reports whether the last step ended in a collision.
func (w *World) Collided() bool { return w.Robot.collided }

func (w *World) String() string {
	return fmt.Sprintf("t=%.2fs robot=%v v=%.2f", w.Time, w.Robot.Pose, w.Robot.Vel.V)
}

// WheelBase is the Turtlebot3 Burger's wheel separation, m.
const WheelBase = 0.16

// TwistToWheels converts a body twist into left/right wheel linear
// speeds for a differential drive with the given wheel base.
func TwistToWheels(t geom.Twist, base float64) (left, right float64) {
	half := base / 2
	return t.V - t.W*half, t.V + t.W*half
}

// WheelsToTwist converts left/right wheel speeds back into a body twist.
func WheelsToTwist(left, right, base float64) geom.Twist {
	return geom.Twist{V: (left + right) / 2, W: (right - left) / base}
}
