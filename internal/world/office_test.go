package world

import (
	"math/rand"
	"testing"

	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/planner"
)

func TestOfficeEveryRoomReachable(t *testing.T) {
	const rooms = 4
	const roomW, roomD, corridorW, res = 2.0, 1.8, 1.2, 0.05
	m := OfficeMap(rooms, roomW, roomD, corridorW, res, rand.New(rand.NewSource(8)))

	cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	cfg.InflationRadius = 0.25
	cm := costmap.New(cfg)
	cm.SetStatic(m)
	p := planner.New(planner.AStar)

	start := geom.V(0.6, OfficeCorridorY(roomD, corridorW))
	for side := 0; side < 2; side++ {
		for r := 0; r < rooms; r++ {
			goal := OfficeRoomCenter(r, side, roomW, roomD, corridorW)
			if _, err := p.Plan(cm, start, goal); err != nil {
				t.Fatalf("room %d side %d unreachable: %v", r, side, err)
			}
		}
	}
}

func TestOfficeDeterministicPerSeed(t *testing.T) {
	a := OfficeMap(3, 2, 1.8, 1.2, 0.1, rand.New(rand.NewSource(2)))
	b := OfficeMap(3, 2, 1.8, 1.2, 0.1, rand.New(rand.NewSource(2)))
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatal("same seed differs")
		}
	}
}

func TestOfficeCorridorIsOpen(t *testing.T) {
	const roomD, corridorW = 1.8, 1.2
	m := OfficeMap(4, 2, roomD, corridorW, 0.05, rand.New(rand.NewSource(3)))
	y := OfficeCorridorY(roomD, corridorW)
	// The corridor centerline must be free along the whole floor.
	for x := 0.3; x < float64(m.Width)*m.Resolution-0.3; x += 0.1 {
		if FootprintCollides(m, geom.V(x, y), 0.11) {
			t.Fatalf("corridor blocked at x=%.1f", x)
		}
	}
}

func TestOfficeDegenerate(t *testing.T) {
	m := OfficeMap(0, 2, 1.8, 1.2, 0.1, rand.New(rand.NewSource(1)))
	if m.Width == 0 {
		t.Fatal("degenerate office")
	}
}
