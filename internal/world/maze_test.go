package world

import (
	"math/rand"
	"testing"

	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/planner"
)

func TestMazeAllCellsConnected(t *testing.T) {
	const cols, rows = 5, 4
	const cellM, wallM, res = 0.8, 0.2, 0.05
	m := MazeMap(cols, rows, cellM, wallM, res, rand.New(rand.NewSource(3)))

	// A perfect maze connects every cell: plan from cell (0,0) to every
	// other cell center.
	cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	cfg.InflationRadius = 0.2 // narrow corridors
	cm := costmap.New(cfg)
	cm.SetStatic(m)
	p := planner.New(planner.AStar)
	start := MazeCellCenter(0, 0, cellM, wallM)
	for cy := 0; cy < rows; cy++ {
		for cx := 0; cx < cols; cx++ {
			goal := MazeCellCenter(cx, cy, cellM, wallM)
			if cx == 0 && cy == 0 {
				continue
			}
			if _, err := p.Plan(cm, start, goal); err != nil {
				t.Fatalf("cell (%d,%d) unreachable: %v", cx, cy, err)
			}
		}
	}
}

func TestMazeDeterministicAndSeeded(t *testing.T) {
	a := MazeMap(4, 4, 0.8, 0.2, 0.1, rand.New(rand.NewSource(5)))
	b := MazeMap(4, 4, 0.8, 0.2, 0.1, rand.New(rand.NewSource(5)))
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatal("same seed, different mazes")
		}
	}
	c := MazeMap(4, 4, 0.8, 0.2, 0.1, rand.New(rand.NewSource(6)))
	same := true
	for i := range a.Cells {
		if a.Cells[i] != c.Cells[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds, identical mazes")
	}
}

func TestMazeBordersClosed(t *testing.T) {
	m := MazeMap(3, 3, 0.8, 0.2, 0.1, rand.New(rand.NewSource(7)))
	for x := 0; x < m.Width; x++ {
		if m.At(geom.Cell{X: x, Y: 0}) != grid.Occupied ||
			m.At(geom.Cell{X: x, Y: m.Height - 1}) != grid.Occupied {
			t.Fatal("horizontal border open")
		}
	}
	for y := 0; y < m.Height; y++ {
		if m.At(geom.Cell{X: 0, Y: y}) != grid.Occupied ||
			m.At(geom.Cell{X: m.Width - 1, Y: y}) != grid.Occupied {
			t.Fatal("vertical border open")
		}
	}
}

func TestMazeDegenerateSizes(t *testing.T) {
	m := MazeMap(0, 0, 0.8, 0.2, 0.1, rand.New(rand.NewSource(1)))
	if m.Width == 0 || m.Height == 0 {
		t.Fatal("degenerate maze")
	}
	if m.CountState(grid.Free) == 0 {
		t.Fatal("1×1 maze should still have a free cell")
	}
}
