package world

import (
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
)

// Standard evaluation environments. Sizes are chosen so missions complete
// in tens of simulated seconds at Turtlebot speeds, matching the scale of
// the paper's lab (a room of roughly 12×6 m).

// LabMap builds the "lab" environment used by the end-to-end experiments:
// a 12×6 m room with interior walls forming a corridor with a doorway,
// a desk island, a shelf and a table, drawn at 5 cm resolution.
func LabMap() *grid.Map {
	m := grid.NewMap(240, 120, 0.05, geom.V(0, 0), grid.Free)
	border(m)
	fillRect(m, 3.0, 0.05, 3.2, 2.4, grid.Occupied) // wall stub from bottom
	fillRect(m, 3.0, 3.4, 3.2, 5.95, grid.Occupied) // wall stub above door gap
	fillRect(m, 5.0, 1.6, 6.2, 2.6, grid.Occupied)  // desk island
	fillRect(m, 8.0, 0.05, 8.2, 2.0, grid.Occupied) // shelf from bottom
	fillRect(m, 9.5, 3.6, 10.5, 4.4, grid.Occupied) // table
	fillRect(m, 6.5, 4.4, 7.5, 5.95, grid.Occupied) // cabinet against top wall
	return m
}

// ObstacleCourseMap builds the Figure 14 environment: an obstacle slalom
// followed by a straight run and a right turn, forcing the three phases
// (avoiding obstacles, heading straight, turning right).
func ObstacleCourseMap() *grid.Map {
	m := grid.NewMap(300, 120, 0.05, geom.V(0, 0), grid.Free)
	border(m)
	// Slalom pillars in the first third.
	fillRect(m, 1.5, 0.05, 1.7, 3.0, grid.Occupied)
	fillRect(m, 2.8, 2.8, 3.0, 5.95, grid.Occupied)
	fillRect(m, 4.2, 0.05, 4.4, 3.2, grid.Occupied)
	// Open straight corridor through the middle third, then a wall that
	// blocks the straight-ahead exit and forces a right turn.
	fillRect(m, 12.0, 2.0, 14.95, 2.2, grid.Occupied)
	return m
}

// EmptyRoomMap returns an empty walled room, useful for tests.
func EmptyRoomMap(wMeters, hMeters, res float64) *grid.Map {
	m := grid.NewMap(int(wMeters/res), int(hMeters/res), res, geom.V(0, 0), grid.Free)
	border(m)
	return m
}

// RandomClutterMap returns a walled room with n random rectangular
// obstacles, deterministically from the given rng.
func RandomClutterMap(wMeters, hMeters, res float64, n int, rng *rand.Rand) *grid.Map {
	m := EmptyRoomMap(wMeters, hMeters, res)
	for i := 0; i < n; i++ {
		x := 0.5 + rng.Float64()*(wMeters-1.5)
		y := 0.5 + rng.Float64()*(hMeters-1.5)
		w := 0.2 + rng.Float64()*0.6
		h := 0.2 + rng.Float64()*0.6
		fillRect(m, x, y, x+w, y+h, grid.Occupied)
	}
	return m
}

func border(m *grid.Map) {
	for x := 0; x < m.Width; x++ {
		m.Set(geom.Cell{X: x, Y: 0}, grid.Occupied)
		m.Set(geom.Cell{X: x, Y: m.Height - 1}, grid.Occupied)
	}
	for y := 0; y < m.Height; y++ {
		m.Set(geom.Cell{X: 0, Y: y}, grid.Occupied)
		m.Set(geom.Cell{X: m.Width - 1, Y: y}, grid.Occupied)
	}
}

// fillRect marks all cells whose centers lie in the world-coordinate
// rectangle [x0,x1]×[y0,y1] with the given state.
func fillRect(m *grid.Map, x0, y0, x1, y1 float64, v int8) {
	a := m.WorldToCell(geom.V(x0, y0))
	b := m.WorldToCell(geom.V(x1, y1))
	for y := a.Y; y <= b.Y; y++ {
		for x := a.X; x <= b.X; x++ {
			m.Set(geom.Cell{X: x, Y: y}, v)
		}
	}
}
