package world

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
)

func emptyWorld() *World {
	return New(EmptyRoomMap(10, 10, 0.05), Turtlebot3(), geom.P(5, 5, 0))
}

func TestStepStraightLine(t *testing.T) {
	w := emptyWorld()
	w.SetCommand(geom.Twist{V: 0.2})
	for i := 0; i < 100; i++ {
		w.Step(0.05) // 5 s total
	}
	// After ramp-up (fast: 2.5 m/s²), the robot covers nearly 0.2*5 = 1 m.
	if w.Robot.Pose.Pos.X < 5.9 || w.Robot.Pose.Pos.X > 6.05 {
		t.Errorf("x = %v, want ≈ 5.99", w.Robot.Pose.Pos.X)
	}
	if math.Abs(w.Robot.Pose.Pos.Y-5) > 1e-9 {
		t.Errorf("y drifted: %v", w.Robot.Pose.Pos.Y)
	}
	if math.Abs(w.Time-5.0) > 1e-9 {
		t.Errorf("time = %v", w.Time)
	}
}

func TestAccelerationLimit(t *testing.T) {
	w := emptyWorld()
	w.SetCommand(geom.Twist{V: 1.0})
	res := w.Step(0.1)
	maxDv := w.Robot.Spec.MaxAccel * 0.1
	if w.Robot.Vel.V > maxDv+1e-9 {
		t.Errorf("velocity jumped to %v, accel limit allows %v", w.Robot.Vel.V, maxDv)
	}
	if math.Abs(res.Accel-w.Robot.Spec.MaxAccel) > 1e-9 {
		t.Errorf("reported accel = %v", res.Accel)
	}
}

func TestCommandClamping(t *testing.T) {
	w := emptyWorld()
	w.SetCommand(geom.Twist{V: 99, W: -99})
	if w.Command().V != w.Robot.Spec.MaxV {
		t.Errorf("V not clamped: %v", w.Command().V)
	}
	if w.Command().W != -w.Robot.Spec.MaxW {
		t.Errorf("W not clamped: %v", w.Command().W)
	}
}

func TestCollisionStopsRobot(t *testing.T) {
	m := EmptyRoomMap(4, 4, 0.05)
	w := New(m, Turtlebot3(), geom.P(2, 2, 0))
	w.SetCommand(geom.Twist{V: 1.0})
	collided := false
	for i := 0; i < 400; i++ {
		res := w.Step(0.05)
		if res.Collided {
			collided = true
			break
		}
	}
	if !collided {
		t.Fatal("robot never collided with the wall")
	}
	// Robot must be stopped and still inside free space.
	if w.Robot.Vel.V != 0 {
		t.Errorf("velocity after collision = %v", w.Robot.Vel.V)
	}
	if FootprintCollides(m, w.Robot.Pose.Pos, w.Robot.Spec.Radius) {
		t.Error("robot ended inside an obstacle")
	}
	// And near the wall (x ≈ 4 - radius).
	if w.Robot.Pose.Pos.X < 3.5 {
		t.Errorf("stopped too early: x = %v", w.Robot.Pose.Pos.X)
	}
}

func TestOdometryTracksPoseWithoutCollision(t *testing.T) {
	w := emptyWorld()
	start := w.Robot.Pose
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		w.SetCommand(geom.Twist{V: 0.1 + 0.1*rng.Float64(), W: rng.Float64() - 0.5})
		w.Step(0.05)
	}
	if w.Collided() {
		t.Skip("random walk collided; odometry check not applicable")
	}
	// Ground truth pose must equal start ∘ odom.
	want := start.Compose(w.Robot.Odom)
	if want.Pos.Dist(w.Robot.Pose.Pos) > 1e-6 {
		t.Errorf("odom-composed pose %v != true pose %v", want, w.Robot.Pose)
	}
}

func TestTractionPower(t *testing.T) {
	s := Turtlebot3()
	if p := s.TractionPower(0, 0); p != 0 {
		t.Errorf("stationary power = %v", p)
	}
	// Cruising: P = P_l + m g μ v.
	v := 0.2
	want := s.TransfLoss + s.Mass*Gravity*s.Friction*v
	if p := s.TractionPower(v, 0); math.Abs(p-want) > 1e-9 {
		t.Errorf("cruise power = %v, want %v", p, want)
	}
	// Accelerating draws more.
	if s.TractionPower(v, 1.0) <= s.TractionPower(v, 0) {
		t.Error("acceleration should increase power")
	}
	// Deceleration does not add negative traction (braking is free).
	if s.TractionPower(v, -1.0) != s.TractionPower(v, 0) {
		t.Error("deceleration should not reduce below cruise")
	}
}

func TestTractionPowerMonotoneInV(t *testing.T) {
	s := Turtlebot3()
	f := func(v1, v2 float64) bool {
		v1, v2 = math.Abs(v1), math.Abs(v2)
		if math.IsNaN(v1) || math.IsNaN(v2) || v1 > 1e6 || v2 > 1e6 {
			return true
		}
		if v1 < 1e-6 || v2 < 1e-6 {
			return true
		}
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return s.TractionPower(v1, 0) <= s.TractionPower(v2, 0)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFootprintCollides(t *testing.T) {
	m := EmptyRoomMap(2, 2, 0.05)
	if !FootprintCollides(m, geom.V(0.02, 1.0), 0.1) {
		t.Error("touching the wall should collide")
	}
	if FootprintCollides(m, geom.V(1.0, 1.0), 0.1) {
		t.Error("center of room should be free")
	}
	if !FootprintCollides(m, geom.V(-5, -5), 0.1) {
		t.Error("outside the map should collide")
	}
}

func TestZeroAndNegativeDt(t *testing.T) {
	w := emptyWorld()
	w.SetCommand(geom.Twist{V: 0.2})
	before := w.Robot.Pose
	w.Step(0)
	w.Step(-1)
	if w.Robot.Pose != before || w.Time != 0 {
		t.Error("zero/negative dt must be a no-op")
	}
}

func TestLabMapProperties(t *testing.T) {
	m := LabMap()
	if m.Width != 240 || m.Height != 120 {
		t.Fatalf("lab dims %dx%d", m.Width, m.Height)
	}
	occ := m.CountState(grid.Occupied)
	free := m.CountState(grid.Free)
	if occ == 0 || free == 0 {
		t.Fatal("lab map degenerate")
	}
	// Borders closed.
	for x := 0; x < m.Width; x++ {
		if m.At(geom.Cell{X: x, Y: 0}) != grid.Occupied {
			t.Fatal("bottom border open")
		}
	}
	// Standard start position is free.
	if FootprintCollides(m, geom.V(0.6, 0.6), 0.11) {
		t.Error("start position blocked")
	}
	// Door gap between wall stubs is passable.
	if FootprintCollides(m, geom.V(3.1, 3.0), 0.11) {
		t.Error("door gap blocked")
	}
}

func TestObstacleCourseMap(t *testing.T) {
	m := ObstacleCourseMap()
	if m.CountState(grid.Occupied) == 0 {
		t.Fatal("no obstacles")
	}
	// Slalom gap between pillar 1 (ends y=3.0) and top wall must be passable.
	if FootprintCollides(m, geom.V(1.6, 4.5), 0.11) {
		t.Error("slalom gap 1 blocked")
	}
	if FootprintCollides(m, geom.V(2.9, 1.4), 0.11) {
		t.Error("slalom gap 2 blocked")
	}
}

func TestRandomClutterDeterministic(t *testing.T) {
	a := RandomClutterMap(8, 8, 0.1, 10, rand.New(rand.NewSource(7)))
	b := RandomClutterMap(8, 8, 0.1, 10, rand.New(rand.NewSource(7)))
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatal("same seed produced different maps")
		}
	}
	c := RandomClutterMap(8, 8, 0.1, 10, rand.New(rand.NewSource(8)))
	same := true
	for i := range a.Cells {
		if a.Cells[i] != c.Cells[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical maps")
	}
}

func TestDistanceAccumulation(t *testing.T) {
	w := emptyWorld()
	w.SetCommand(geom.Twist{V: 0.2})
	for i := 0; i < 100; i++ {
		w.Step(0.05)
	}
	if d := w.Distance(); d < 0.9 || d > 1.0 {
		t.Errorf("distance = %v, want ≈ 0.99", d)
	}
}

func TestArcTurn(t *testing.T) {
	w := emptyWorld()
	w.SetCommand(geom.Twist{V: 0.1, W: 0.5})
	for i := 0; i < 200; i++ {
		w.Step(0.05)
	}
	if math.Abs(w.Robot.Vel.W-0.5) > 1e-9 {
		t.Errorf("angular velocity = %v", w.Robot.Vel.W)
	}
	if w.Robot.Pose.Theta == 0 {
		t.Error("heading did not change on arc")
	}
}

func TestWheelConversionsRoundtrip(t *testing.T) {
	f := func(vr, wr int8) bool {
		tw := geom.Twist{V: float64(vr) * 0.01, W: float64(wr) * 0.02}
		l, r := TwistToWheels(tw, WheelBase)
		back := WheelsToTwist(l, r, WheelBase)
		return math.Abs(back.V-tw.V) < 1e-12 && math.Abs(back.W-tw.W) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWheelKinematics(t *testing.T) {
	// Pure rotation: wheels spin opposite at w·base/2.
	l, r := TwistToWheels(geom.Twist{V: 0, W: 1}, WheelBase)
	if l != -0.08 || r != 0.08 {
		t.Errorf("pure rotation wheels = %v, %v", l, r)
	}
	// Pure translation: wheels equal.
	l, r = TwistToWheels(geom.Twist{V: 0.2, W: 0}, WheelBase)
	if l != 0.2 || r != 0.2 {
		t.Errorf("pure translation wheels = %v, %v", l, r)
	}
}
