package world

import (
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
)

// MazeMap generates a perfect maze (recursive backtracker) of cols×rows
// corridor cells, each corridor `cellMeters` wide with `wallMeters`
// walls, at the given grid resolution. Mazes stress exactly what the
// paper's Fig. 14 analysis cares about: constant turning keeps the real
// velocity far below the maximum, and what the adaptive policy should do
// about paid parallelism follows.
func MazeMap(cols, rows int, cellMeters, wallMeters, res float64, rng *rand.Rand) *grid.Map {
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	cellPx := int(cellMeters / res)
	wallPx := int(wallMeters / res)
	if cellPx < 1 {
		cellPx = 1
	}
	if wallPx < 1 {
		wallPx = 1
	}
	pitch := cellPx + wallPx
	w := cols*pitch + wallPx
	h := rows*pitch + wallPx
	m := grid.NewMap(w, h, res, geom.V(0, 0), grid.Occupied)

	// Carve the cell interiors.
	carveCell := func(cx, cy int) {
		x0 := wallPx + cx*pitch
		y0 := wallPx + cy*pitch
		for y := y0; y < y0+cellPx; y++ {
			for x := x0; x < x0+cellPx; x++ {
				m.Set(geom.Cell{X: x, Y: y}, grid.Free)
			}
		}
	}
	// Carve the wall segment between two adjacent cells. Normalize so
	// (ax, ay) is the lower-left of the pair.
	carveWall := func(ax, ay, bx, by int) {
		if bx < ax || by < ay {
			ax, ay, bx, by = bx, by, ax, ay
		}
		x0 := wallPx + ax*pitch
		y0 := wallPx + ay*pitch
		switch {
		case bx == ax+1: // open to the right
			for y := y0; y < y0+cellPx; y++ {
				for x := x0 + cellPx; x < x0+pitch; x++ {
					m.Set(geom.Cell{X: x, Y: y}, grid.Free)
				}
			}
		case by == ay+1: // open upward
			for y := y0 + cellPx; y < y0+pitch; y++ {
				for x := x0; x < x0+cellPx; x++ {
					m.Set(geom.Cell{X: x, Y: y}, grid.Free)
				}
			}
		}
	}

	visited := make([]bool, cols*rows)
	idx := func(x, y int) int { return y*cols + x }
	type cell struct{ x, y int }
	stack := []cell{{0, 0}}
	visited[0] = true
	carveCell(0, 0)
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		// Collect unvisited neighbors.
		var nbrs []cell
		for _, d := range dirs {
			nx, ny := cur.x+d[0], cur.y+d[1]
			if nx < 0 || ny < 0 || nx >= cols || ny >= rows || visited[idx(nx, ny)] {
				continue
			}
			nbrs = append(nbrs, cell{nx, ny})
		}
		if len(nbrs) == 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		next := nbrs[rng.Intn(len(nbrs))]
		visited[idx(next.x, next.y)] = true
		carveCell(next.x, next.y)
		carveWall(cur.x, cur.y, next.x, next.y)
		stack = append(stack, next)
	}
	return m
}

// MazeCellCenter returns the world coordinates of a maze cell's center,
// for placing starts and goals.
func MazeCellCenter(cx, cy int, cellMeters, wallMeters float64) geom.Vec2 {
	pitch := cellMeters + wallMeters
	return geom.V(
		wallMeters+float64(cx)*pitch+cellMeters/2,
		wallMeters+float64(cy)*pitch+cellMeters/2,
	)
}
