package grid

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"lgvoffload/internal/geom"
)

func TestMapBasics(t *testing.T) {
	m := NewMap(10, 5, 0.1, geom.V(-0.5, -0.25), Free)
	if m.At(geom.Cell{X: 0, Y: 0}) != Free {
		t.Error("fresh cell not free")
	}
	m.Set(geom.Cell{X: 3, Y: 2}, Occupied)
	if m.At(geom.Cell{X: 3, Y: 2}) != Occupied {
		t.Error("Set/At roundtrip failed")
	}
	if m.At(geom.Cell{X: -1, Y: 0}) != Unknown {
		t.Error("out of bounds should be Unknown")
	}
	m.Set(geom.Cell{X: 100, Y: 100}, Occupied) // must not panic
	if m.CountState(Occupied) != 1 {
		t.Errorf("CountState = %d", m.CountState(Occupied))
	}
}

func TestWorldCellRoundtrip(t *testing.T) {
	m := NewMap(20, 20, 0.05, geom.V(-0.5, -0.5), Free)
	f := func(xr, yr uint8) bool {
		c := geom.Cell{X: int(xr) % 20, Y: int(yr) % 20}
		// Center of a cell must map back to the same cell.
		return m.WorldToCell(m.CellToWorld(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorldToCellNegativeCoords(t *testing.T) {
	m := NewMap(10, 10, 1.0, geom.V(-5, -5), Free)
	c := m.WorldToCell(geom.V(-4.5, -4.5))
	if c != (geom.Cell{X: 0, Y: 0}) {
		t.Errorf("negative world coord mapped to %v", c)
	}
	c = m.WorldToCell(geom.V(4.5, 4.5))
	if c != (geom.Cell{X: 9, Y: 9}) {
		t.Errorf("positive world coord mapped to %v", c)
	}
}

const boxMap = `
##########
#........#
#........#
#...##...#
#........#
##########
`

func mustParse(t *testing.T, text string) *Map {
	t.Helper()
	m, err := ParseText(text, 0.1, geom.V(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseText(t *testing.T) {
	m := mustParse(t, boxMap)
	if m.Width != 10 || m.Height != 6 {
		t.Fatalf("dims %dx%d", m.Width, m.Height)
	}
	// Top row of text is the highest y row.
	if m.At(geom.Cell{X: 0, Y: 5}) != Occupied {
		t.Error("top-left should be occupied")
	}
	if m.At(geom.Cell{X: 1, Y: 4}) != Free {
		t.Error("interior should be free")
	}
	// The ## island at text row 3 => y = 2, x = 4..5.
	if m.At(geom.Cell{X: 4, Y: 2}) != Occupied || m.At(geom.Cell{X: 5, Y: 2}) != Occupied {
		t.Error("island not parsed")
	}
}

func TestParseTextErrors(t *testing.T) {
	if _, err := ParseText("", 0.1, geom.V(0, 0)); err == nil {
		t.Error("empty map should error")
	}
	if _, err := ParseText("##\n#", 0.1, geom.V(0, 0)); err == nil {
		t.Error("ragged map should error")
	}
	if _, err := ParseText("#x", 0.1, geom.V(0, 0)); err == nil {
		t.Error("bad char should error")
	}
}

func TestWriteTextRoundtrip(t *testing.T) {
	m := mustParse(t, boxMap)
	m.Set(geom.Cell{X: 2, Y: 2}, Unknown)
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ParseText(buf.String(), m.Resolution, m.Origin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Cells {
		if m.Cells[i] != m2.Cells[i] {
			t.Fatalf("cell %d differs after roundtrip", i)
		}
	}
}

func TestRaycastHit(t *testing.T) {
	m := mustParse(t, boxMap)
	// From the center of the box looking in +x: wall at x=9 (world 0.95
	// center). Start at (0.15, 0.45).
	from := geom.V(0.15, 0.45)
	d, hit := m.Raycast(from, 0, 5)
	if !hit {
		t.Fatal("expected hit")
	}
	want := 0.95 - 0.15
	if math.Abs(d-want) > 0.11 {
		t.Errorf("raycast dist = %v, want ≈ %v", d, want)
	}
}

func TestRaycastMiss(t *testing.T) {
	m := NewMap(100, 100, 0.1, geom.V(0, 0), Free)
	d, hit := m.Raycast(geom.V(5, 5), 0, 2)
	if hit || d != 2 {
		t.Errorf("expected clean miss at max range, got d=%v hit=%v", d, hit)
	}
}

func TestRaycastHitsIsland(t *testing.T) {
	m := mustParse(t, boxMap)
	// From left of the island (x cells 4..5 at y=2), looking +x from (0.15, 0.25).
	d, hit := m.Raycast(geom.V(0.15, 0.25), 0, 5)
	if !hit {
		t.Fatal("expected island hit")
	}
	if d > 0.4 {
		t.Errorf("should hit island first, d=%v", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := mustParse(t, boxMap)
	c := m.Clone()
	c.Set(geom.Cell{X: 1, Y: 1}, Occupied)
	if m.At(geom.Cell{X: 1, Y: 1}) == Occupied {
		t.Error("Clone shares storage")
	}
}

func TestLogOddsBeamIntegration(t *testing.T) {
	g := NewLogOdds(50, 50, 0.1, geom.V(0, 0))
	from := geom.V(0.55, 2.55)
	// Integrate 10 hits at 2 m straight ahead.
	for i := 0; i < 10; i++ {
		g.IntegrateBeam(from, 0, 2.0, true)
	}
	endCell := g.WorldToCell(from.Add(geom.V(2, 0)))
	if p := g.Prob(endCell); p < 0.9 {
		t.Errorf("endpoint prob = %v, want > 0.9", p)
	}
	midCell := g.WorldToCell(from.Add(geom.V(1, 0)))
	if p := g.Prob(midCell); p > 0.1 {
		t.Errorf("mid-beam prob = %v, want < 0.1", p)
	}
	// Untouched cell stays 0.5 and not Touched.
	side := geom.Cell{X: 5, Y: 40}
	if g.Prob(side) != 0.5 || g.Touched(side) {
		t.Error("untouched cell should be 0.5 / untouched")
	}
}

func TestLogOddsMaxRangeMissLeavesEndpoint(t *testing.T) {
	g := NewLogOdds(50, 50, 0.1, geom.V(0, 0))
	from := geom.V(0.55, 2.55)
	g.IntegrateBeam(from, 0, 2.0, false)
	endCell := g.WorldToCell(from.Add(geom.V(2, 0)))
	if g.Touched(endCell) {
		t.Error("miss endpoint must stay untouched")
	}
	midCell := g.WorldToCell(from.Add(geom.V(1, 0)))
	if p := g.Prob(midCell); p >= 0.5 {
		t.Errorf("mid-beam prob = %v, want < 0.5", p)
	}
}

func TestLogOddsClamping(t *testing.T) {
	g := NewLogOdds(20, 20, 0.1, geom.V(0, 0))
	from := geom.V(0.15, 1.05)
	for i := 0; i < 1000; i++ {
		g.IntegrateBeam(from, 0, 1.0, true)
	}
	endCell := g.WorldToCell(from.Add(geom.V(1, 0)))
	l := g.At(endCell)
	if l > g.LMax+1e-9 {
		t.Errorf("log odds %v exceeded max %v", l, g.LMax)
	}
	midCell := g.WorldToCell(from.Add(geom.V(0.5, 0)))
	if lm := g.At(midCell); lm < g.LMin-1e-9 {
		t.Errorf("log odds %v under min %v", lm, g.LMin)
	}
}

// TestLogOddsCloneSharesUntilWrite pins the copy-on-write contract:
// clones observe the original's data without copying it, diverge only in
// tiles they write, and never leak writes back to the source.
func TestLogOddsCloneSharesUntilWrite(t *testing.T) {
	g := NewLogOdds(100, 100, 0.1, geom.V(0, 0))
	from := geom.V(0.55, 5.05)
	for i := 0; i < 2; i++ { // stay well under the LMax clamp
		g.IntegrateBeam(from, 0, 3.0, true)
	}
	c := g.Clone()
	endCell := g.WorldToCell(from.Add(geom.V(3, 0)))
	if c.At(endCell) != g.At(endCell) {
		t.Fatal("clone does not see original's data")
	}
	if n := c.TakeCopied(); n != 0 {
		t.Fatalf("clone copied %d cells before any write", n)
	}

	// Writing through the clone must not disturb the original.
	before := g.At(endCell)
	c.IntegrateBeam(from, 0, 3.0, true)
	if g.At(endCell) != before {
		t.Error("clone write leaked into original")
	}
	if c.At(endCell) <= before {
		t.Error("clone write had no effect")
	}
	// The write dirtied only the beam's tiles, charged in whole tiles.
	n := c.TakeCopied()
	if n == 0 || n%TileCells != 0 {
		t.Errorf("copied %d cells, want a positive multiple of %d", n, TileCells)
	}
	if n > 4*TileCells {
		t.Errorf("copied %d cells for a 3 m beam, want at most 4 tiles", n)
	}

	// Writing through the original must likewise not disturb the clone.
	cEnd := c.At(endCell)
	g.IntegrateBeam(from, 0, 3.0, true)
	if c.At(endCell) != cEnd {
		t.Error("original write leaked into clone")
	}
}

// TestLogOddsCloneChain checks refcounts survive multi-way sharing: the
// same tile shared by three grids is detached independently by each.
func TestLogOddsCloneChain(t *testing.T) {
	g := NewLogOdds(64, 64, 0.1, geom.V(0, 0))
	from := geom.V(0.35, 3.15)
	g.IntegrateBeam(from, 0, 2.0, true)
	a, b := g.Clone(), g.Clone()
	end := g.WorldToCell(from.Add(geom.V(2, 0)))
	base := g.At(end)
	a.IntegrateBeam(from, 0, 2.0, true)
	b.IntegrateBeam(from, 0, 2.0, true)
	b.IntegrateBeam(from, 0, 2.0, true)
	if g.At(end) != base {
		t.Error("source changed by clone writes")
	}
	if a.At(end) == b.At(end) || a.At(end) <= base {
		t.Errorf("clones not independent: src=%v a=%v b=%v", base, a.At(end), b.At(end))
	}
	// After everyone detached, writes to g are in-place again (no copy).
	g.TakeCopied()
	g.IntegrateBeam(from, 0, 2.0, true)
	if n := g.TakeCopied(); n != 0 {
		t.Errorf("sole-owner write copied %d cells, want 0", n)
	}
}

// TestLogOddsReleaseKeepsSharedTiles pins the free-list contract: a
// released grid recycles only tiles it owned exclusively, so a surviving
// clone keeps reading its shared tiles unharmed, even after the recycled
// tiles are handed out again and overwritten.
func TestLogOddsReleaseKeepsSharedTiles(t *testing.T) {
	g := NewLogOdds(64, 64, 0.1, geom.V(0, 0))
	from := geom.V(0.35, 3.15)
	for i := 0; i < 2; i++ {
		g.IntegrateBeam(from, 0, 2.0, true)
	}
	c := g.Clone()
	end := g.WorldToCell(from.Add(geom.V(2, 0)))
	want := c.At(end)
	g.Release()
	// Churn the free list: fresh grids must come back zeroed and writes to
	// them must not alias the survivor's tiles.
	for i := 0; i < 3; i++ {
		f := NewLogOdds(64, 64, 0.1, geom.V(0, 0))
		if l := f.At(end); l != 0 {
			t.Fatalf("recycled tile not zeroed: At = %v", l)
		}
		f.IntegrateBeam(from, 0, 2.0, true)
		f.Release()
	}
	if got := c.At(end); got != want {
		t.Errorf("surviving clone corrupted after Release: At = %v, want %v", got, want)
	}
	// The survivor is now sole owner: its writes are in-place, not copies.
	c.TakeCopied()
	c.IntegrateBeam(from, 0, 2.0, true)
	if n := c.TakeCopied(); n != 0 {
		t.Errorf("sole-owner write after Release copied %d cells, want 0", n)
	}
}

func TestLogOddsToMap(t *testing.T) {
	g := NewLogOdds(50, 50, 0.1, geom.V(0, 0))
	from := geom.V(0.55, 2.55)
	for i := 0; i < 10; i++ {
		g.IntegrateBeam(from, 0, 2.0, true)
	}
	m := g.ToMap(0.25, 0.65)
	endCell := m.WorldToCell(from.Add(geom.V(2, 0)))
	if m.At(endCell) != Occupied {
		t.Error("endpoint should threshold to Occupied")
	}
	midCell := m.WorldToCell(from.Add(geom.V(1, 0)))
	if m.At(midCell) != Free {
		t.Error("mid should threshold to Free")
	}
	if m.At(geom.Cell{X: 5, Y: 40}) != Unknown {
		t.Error("untouched should stay Unknown")
	}
}

func TestDistanceTransform(t *testing.T) {
	m := NewMap(11, 11, 1.0, geom.V(0, 0), Free)
	m.Set(geom.Cell{X: 5, Y: 5}, Occupied)
	d := DistanceTransform(m)
	at := func(x, y int) float64 { return d[y*11+x] }
	if at(5, 5) != 0 {
		t.Error("occupied cell should be 0")
	}
	if at(6, 5) != 1.0 {
		t.Errorf("adjacent = %v", at(6, 5))
	}
	if math.Abs(at(6, 6)-math.Sqrt2) > 1e-9 {
		t.Errorf("diagonal = %v", at(6, 6))
	}
	// Chamfer 3-4 is within ~8% of Euclidean.
	want := math.Hypot(5, 5)
	if got := at(0, 0); math.Abs(got-want)/want > 0.09 {
		t.Errorf("corner = %v, want ≈ %v", got, want)
	}
}

func TestDistanceTransformMonotone(t *testing.T) {
	m := mustParse(t, boxMap)
	d := DistanceTransform(m)
	// Every free cell's distance exceeds that of at least one neighbor by
	// at most resolution*sqrt2 (continuity of the transform).
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			i := y*m.Width + x
			if m.Cells[i] == Occupied {
				continue
			}
			best := math.MaxFloat64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx, ny := x+dx, y+dy
					if nx < 0 || ny < 0 || nx >= m.Width || ny >= m.Height {
						continue
					}
					if v := d[ny*m.Width+nx]; v < best {
						best = v
					}
				}
			}
			if d[i] > best+m.Resolution*math.Sqrt2+1e-9 {
				t.Fatalf("discontinuity at (%d,%d): %v vs min nbr %v", x, y, d[i], best)
			}
		}
	}
}

func TestKnownFraction(t *testing.T) {
	m := NewMap(10, 10, 0.1, geom.V(0, 0), Unknown)
	if m.KnownFraction() != 0 {
		t.Error("all unknown should be 0")
	}
	for i := 0; i < 50; i++ {
		m.Cells[i] = Free
	}
	if f := m.KnownFraction(); f != 0.5 {
		t.Errorf("KnownFraction = %v", f)
	}
}

func TestOccupiedAtWorld(t *testing.T) {
	m := mustParse(t, boxMap)
	if !m.OccupiedAtWorld(geom.V(0.05, 0.05)) {
		t.Error("wall should be occupied")
	}
	if m.OccupiedAtWorld(geom.V(0.15, 0.15)) {
		t.Error("interior should be free")
	}
	if !m.OccupiedAtWorld(geom.V(-1, -1)) {
		t.Error("out of bounds should be treated occupied")
	}
}

func TestWriteTextFormat(t *testing.T) {
	m := NewMap(3, 2, 0.1, geom.V(0, 0), Free)
	m.Set(geom.Cell{X: 0, Y: 1}, Occupied)
	m.Set(geom.Cell{X: 2, Y: 0}, Unknown)
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	want := "#..\n..?\n"
	if buf.String() != want {
		t.Errorf("got %q want %q", buf.String(), want)
	}
}

func TestParseTextSpacesAreFree(t *testing.T) {
	m, err := ParseText("# #\n###", 0.1, geom.V(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(geom.Cell{X: 1, Y: 1}) != Free {
		t.Error("space should parse as Free")
	}
}
