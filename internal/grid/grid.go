// Package grid implements 2-D occupancy grids: the probabilistic log-odds
// map used by SLAM, the ternary occupancy map used by planners and
// costmaps, a Euclidean distance transform for inflation and trajectory
// scoring, and a simple text format for map I/O.
package grid

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"lgvoffload/internal/geom"
)

// Occupancy states for ternary maps.
const (
	Free     int8 = 0
	Occupied int8 = 100
	Unknown  int8 = -1
)

// Map is a ternary occupancy grid anchored at Origin (world coordinates of
// cell (0,0)'s lower-left corner) with square cells of Resolution meters.
type Map struct {
	Width, Height int
	Resolution    float64
	Origin        geom.Vec2
	Cells         []int8
}

// NewMap allocates a map filled with the given initial state.
func NewMap(w, h int, res float64, origin geom.Vec2, fill int8) *Map {
	m := &Map{Width: w, Height: h, Resolution: res, Origin: origin,
		Cells: make([]int8, w*h)}
	if fill != 0 {
		for i := range m.Cells {
			m.Cells[i] = fill
		}
	}
	return m
}

// Clone returns a deep copy of the map.
func (m *Map) Clone() *Map {
	c := *m
	c.Cells = make([]int8, len(m.Cells))
	copy(c.Cells, m.Cells)
	return &c
}

// InBounds reports whether the cell is inside the grid.
func (m *Map) InBounds(c geom.Cell) bool {
	return c.X >= 0 && c.X < m.Width && c.Y >= 0 && c.Y < m.Height
}

// At returns the state of the cell, or Unknown if out of bounds.
func (m *Map) At(c geom.Cell) int8 {
	if !m.InBounds(c) {
		return Unknown
	}
	return m.Cells[c.Y*m.Width+c.X]
}

// Set writes the state of a cell; out-of-bounds writes are ignored.
func (m *Map) Set(c geom.Cell, v int8) {
	if m.InBounds(c) {
		m.Cells[c.Y*m.Width+c.X] = v
	}
}

// WorldToCell converts world coordinates to a cell index (may be out of
// bounds; check with InBounds).
func (m *Map) WorldToCell(p geom.Vec2) geom.Cell {
	return geom.Cell{
		X: int(math.Floor((p.X - m.Origin.X) / m.Resolution)),
		Y: int(math.Floor((p.Y - m.Origin.Y) / m.Resolution)),
	}
}

// CellToWorld returns the world coordinates of the cell's center.
func (m *Map) CellToWorld(c geom.Cell) geom.Vec2 {
	return geom.Vec2{
		X: m.Origin.X + (float64(c.X)+0.5)*m.Resolution,
		Y: m.Origin.Y + (float64(c.Y)+0.5)*m.Resolution,
	}
}

// OccupiedAtWorld reports whether the world point lies in an occupied or
// out-of-bounds cell. Unknown cells are treated as free; callers that need
// conservative behaviour should inspect At directly.
func (m *Map) OccupiedAtWorld(p geom.Vec2) bool {
	c := m.WorldToCell(p)
	if !m.InBounds(c) {
		return true
	}
	return m.At(c) == Occupied
}

// Raycast casts a ray from world point from toward heading theta, up to
// maxRange meters, and returns the distance to the first occupied cell.
// If nothing is hit within maxRange (or the ray exits the map), it returns
// maxRange and hit=false.
func (m *Map) Raycast(from geom.Vec2, theta, maxRange float64) (dist float64, hit bool) {
	to := from.Add(geom.V(maxRange, 0).Rotate(theta))
	a := m.WorldToCell(from)
	b := m.WorldToCell(to)
	dist, hit = maxRange, false
	geom.Bresenham(a, b, func(c geom.Cell) bool {
		if !m.InBounds(c) {
			return false
		}
		if m.At(c) == Occupied {
			d := m.CellToWorld(c).Dist(from)
			if d < dist {
				dist = d
			}
			hit = true
			return false
		}
		return true
	})
	if !hit {
		dist = maxRange
	}
	return dist, hit
}

// CountState returns the number of cells with the given state.
func (m *Map) CountState(v int8) int {
	n := 0
	for _, c := range m.Cells {
		if c == v {
			n++
		}
	}
	return n
}

// KnownFraction returns the fraction of cells that are not Unknown.
func (m *Map) KnownFraction() float64 {
	if len(m.Cells) == 0 {
		return 0
	}
	known := 0
	for _, c := range m.Cells {
		if c != Unknown {
			known++
		}
	}
	return float64(known) / float64(len(m.Cells))
}

// ---------------------------------------------------------------------------
// Log-odds probabilistic grid (SLAM mapping layer).

// Tile geometry for the copy-on-write storage below. 32×32 cells × 2 B
// = 2 KB per tile: small enough that a scan's dirty set is a handful of
// tiles (and a whole tile spans just 32 cache lines), big enough that
// the tile table stays tiny.
const (
	tileShift = 5
	tileDim   = 1 << tileShift
	tileMask  = tileDim - 1
	// TileCells is the cell count of one COW tile; CopyOps accounting in
	// the SLAM filter charges this much copy work per duplicated tile.
	TileCells = tileDim * tileDim
)

// Fixed-point log-odds representation. Cells store log odds as int16
// quanta of 1/4096: the representable range (±7.99) comfortably covers
// the default ±4 clamp, the quantization error (≤ 1/8192 log-odds,
// ~3e-5 in probability) is far below the per-observation increments,
// and integer accumulate-and-clamp replaces the float64 add plus
// math.Min/math.Max pair on the beam-integration hot path.
const (
	// QuantShift is the fixed-point fractional bit count.
	QuantShift = 12
	// QuantScale converts log-odds to quanta: q = round(l * QuantScale).
	QuantScale = 1 << QuantShift
	// quantMax saturates quantization so ±Inf or huge parameter values
	// stay representable (and symmetric) rather than wrapping.
	quantMax = 32767
)

// Quantize converts a log-odds value to its int16 fixed-point
// representation, saturating at the representable range.
func Quantize(l float64) int16 {
	q := math.Round(l * QuantScale)
	if q > quantMax {
		q = quantMax
	} else if q < -quantMax {
		q = -quantMax
	}
	return int16(q)
}

// Dequantize converts a fixed-point log-odds value back to float64.
func Dequantize(q int16) float64 { return float64(q) * (1.0 / QuantScale) }

// The logistic lookup tables: one entry per representable fixed-point
// log-odds value. logisticTab[q+lutOff] = 1/(1+exp(-q/QuantScale)) is
// THE occupancy-probability definition — every probe path (Prob, ToMap,
// the SLAM matcher) reads it instead of re-deriving math.Exp, so the
// occupancy semantics cannot drift between call sites. scoreTab holds
// the matcher's 2p-1 form; its zero entry is exactly 0.0, which makes
// the "untouched cell is neutral" rule branch-free.
const lutOff = 32768

var (
	lutOnce     sync.Once
	logisticTab [2 * lutOff]float64
	scoreTab    [2 * lutOff]float64
)

func initLUT() {
	lutOnce.Do(func() {
		for i := range logisticTab {
			p := 1 / (1 + math.Exp(-Dequantize(int16(i-lutOff))))
			logisticTab[i] = p
			scoreTab[i] = 2*p - 1
		}
	})
}

// Logistic returns the occupancy probability for a fixed-point log-odds
// value via the shared lookup table: 1/(1+exp(-Dequantize(q))).
func Logistic(q int16) float64 {
	initLUT()
	return logisticTab[int(q)+lutOff]
}

// Score returns the scan-matcher cell score 2·Logistic(q)−1: +1 for
// certainly occupied, −1 for certainly free, exactly 0 for untouched.
func Score(q int16) float64 {
	initLUT()
	return scoreTab[int(q)+lutOff]
}

// tile is one reference-counted block of fixed-point log-odds values.
// The refcount is atomic because tiles shared between particles are
// copy-on-written from the parallel section of the SLAM update: a
// writer that observes ref > 1 copies the tile and release-decrements,
// so an in-place write (ref == 1) can only happen after every other
// owner has already detached.
type tile struct {
	ref atomic.Int32
	l   [TileCells]int16
}

// tilePool recycles tiles across COW copies and released grids, so the
// steady-state filter (resample → clone → dirty-tile copies → drop)
// churns through the free list instead of the allocator.
var tilePool = sync.Pool{New: func() any { return new(tile) }}

// newTileZero returns an exclusively-owned all-zero tile.
func newTileZero() *tile {
	t := tilePool.Get().(*tile)
	clear(t.l[:])
	t.ref.Store(1)
	return t
}

// newTileCopy returns an exclusively-owned copy of src's cells.
func newTileCopy(src *tile) *tile {
	t := tilePool.Get().(*tile)
	t.l = src.l
	t.ref.Store(1)
	return t
}

// LogOdds is a probabilistic occupancy grid storing per-cell log odds.
// It shares geometry with Map. Storage is tiled with reference-counted
// copy-on-write sharing (the classic RBPF map-sharing optimization):
// Clone shares every tile with the original, and writes copy only the
// tiles they touch, so resampling M particles costs O(dirty tiles)
// instead of O(M · map).
type LogOdds struct {
	Width, Height int
	Resolution    float64
	Origin        geom.Vec2

	// Update increments and clamping bounds, in log-odds units.
	LOcc, LFree, LMin, LMax float64

	tilesW, tilesH int
	tiles          []*tile
	copied         int // cells duplicated by COW since the last TakeCopied
}

// NewLogOdds allocates a log-odds grid with standard update parameters
// (p_occ = 0.7, p_free = 0.4 per observation, clamped to [-4, 4]).
// Tiles are allocated eagerly (drawn from the free list when possible) so
// the steady-state update path never hits the allocator: writes into an
// exclusively-owned grid are pure stores, and only COW detaches copy.
func NewLogOdds(w, h int, res float64, origin geom.Vec2) *LogOdds {
	initLUT()
	tw := (w + tileMask) >> tileShift
	th := (h + tileMask) >> tileShift
	g := &LogOdds{
		Width: w, Height: h, Resolution: res, Origin: origin,
		LOcc: logit(0.7), LFree: logit(0.4), LMin: -4, LMax: 4,
		tilesW: tw, tilesH: th, tiles: make([]*tile, tw*th),
	}
	for i := range g.tiles {
		g.tiles[i] = newTileZero()
	}
	return g
}

func logit(p float64) float64 { return math.Log(p / (1 - p)) }

// tileIndex splits an in-bounds cell into its tile and inner indices.
func (g *LogOdds) tileIndex(c geom.Cell) (ti, inner int) {
	return (c.Y>>tileShift)*g.tilesW + c.X>>tileShift,
		(c.Y&tileMask)<<tileShift | c.X&tileMask
}

// At returns the log-odds value of a cell (0 when untouched or out of
// bounds), dequantized from the fixed-point storage.
func (g *LogOdds) At(c geom.Cell) float64 { return Dequantize(g.AtQ(c)) }

// AtQ returns the raw fixed-point log-odds of a cell (0 when untouched
// or out of bounds). This is the probe the scan-matching hot path uses:
// the value indexes the shared logistic/score lookup tables directly.
func (g *LogOdds) AtQ(c geom.Cell) int16 {
	if !g.InBounds(c) {
		return 0
	}
	ti, inner := g.tileIndex(c)
	t := g.tiles[ti]
	if t == nil {
		return 0
	}
	return t.l[inner]
}

// writable returns the tile at ti ready for in-place writes, allocating
// an untouched tile or copying a shared one first (copy-on-write).
func (g *LogOdds) writable(ti int) *tile {
	t := g.tiles[ti]
	if t == nil {
		t = newTileZero()
		g.tiles[ti] = t
		return t
	}
	if t.ref.Load() > 1 {
		nt := newTileCopy(t)
		// Release after the copy: a peer observing the decremented count
		// is guaranteed to see our reads complete, so its in-place writes
		// (once it is the sole owner) cannot race the copy above.
		t.ref.Add(-1)
		g.tiles[ti] = nt
		g.copied += TileCells
		return nt
	}
	return t
}

// Clone returns a copy-on-write duplicate: both grids share every tile
// until one of them writes. The duplicate's work is O(tiles), not
// O(cells) — TileCount is the matching op count for work accounting.
func (g *LogOdds) Clone() *LogOdds {
	c := *g
	c.copied = 0
	c.tiles = make([]*tile, len(g.tiles))
	copy(c.tiles, g.tiles)
	for _, t := range c.tiles {
		if t != nil {
			t.ref.Add(1)
		}
	}
	return &c
}

// TileCount returns the size of the tile table (allocated or not).
func (g *LogOdds) TileCount() int { return len(g.tiles) }

// NewShell returns a grid with g's geometry and parameters but an empty
// tile table (every slot nil, meaning untouched). Shells are cheap —
// no tile data — and exist to pre-size CloneInto destinations, e.g.
// spare particle shells for resampling.
func (g *LogOdds) NewShell() *LogOdds {
	c := *g
	c.copied = 0
	c.tiles = make([]*tile, len(g.tiles))
	return &c
}

// CloneInto turns dst — a released shell, typically a particle dropped by
// an earlier resample — into a copy-on-write duplicate of g, reusing
// dst's tile table so steady-state resampling allocates nothing. Falls
// back to allocating a table when the geometry differs.
func (g *LogOdds) CloneInto(dst *LogOdds) {
	tiles := dst.tiles
	if len(tiles) != len(g.tiles) {
		tiles = make([]*tile, len(g.tiles))
	}
	*dst = *g
	dst.copied = 0
	dst.tiles = tiles
	copy(tiles, g.tiles)
	for _, t := range tiles {
		if t != nil {
			t.ref.Add(1)
		}
	}
}

// Release drops this grid's reference on every tile and recycles the ones
// it owned exclusively into the free list. Call it when a grid is being
// discarded (e.g. a particle dropped at resampling) — the grid must not
// be read or written afterward. Tiles still shared with live clones stay
// untouched: only a refcount that reaches zero is recycled.
func (g *LogOdds) Release() {
	for i, t := range g.tiles {
		if t != nil && t.ref.Add(-1) == 0 {
			tilePool.Put(t)
		}
		g.tiles[i] = nil
	}
}

// TakeCopied returns the number of cells duplicated by copy-on-write
// since the last call, and resets the counter. The SLAM filter folds
// this into UpdateStats.CopyOps so cycle accounting still reflects the
// real copy work performed.
func (g *LogOdds) TakeCopied() int {
	n := g.copied
	g.copied = 0
	return n
}

// InBounds reports whether the cell is inside the grid.
func (g *LogOdds) InBounds(c geom.Cell) bool {
	return c.X >= 0 && c.X < g.Width && c.Y >= 0 && c.Y < g.Height
}

// WorldToCell converts world coordinates to a cell index.
func (g *LogOdds) WorldToCell(p geom.Vec2) geom.Cell {
	return geom.Cell{
		X: int(math.Floor((p.X - g.Origin.X) / g.Resolution)),
		Y: int(math.Floor((p.Y - g.Origin.Y) / g.Resolution)),
	}
}

// CellToWorld returns the world coordinates of the cell's center.
func (g *LogOdds) CellToWorld(c geom.Cell) geom.Vec2 {
	return geom.Vec2{
		X: g.Origin.X + (float64(c.X)+0.5)*g.Resolution,
		Y: g.Origin.Y + (float64(c.Y)+0.5)*g.Resolution,
	}
}

// Prob returns the occupancy probability of a cell (0.5 when untouched or
// out of bounds), via the shared logistic lookup table.
func (g *LogOdds) Prob(c geom.Cell) float64 {
	return Logistic(g.AtQ(c))
}

// Touched reports whether the cell has received any observation.
func (g *LogOdds) Touched(c geom.Cell) bool {
	return g.AtQ(c) != 0
}

// IntegrateBeam updates the grid along one laser beam: cells between the
// sensor and the endpoint are observed free; the endpoint cell is observed
// occupied when the beam actually hit something (hit=true).
// The number of cells updated is returned so callers can account work.
func (g *LogOdds) IntegrateBeam(from geom.Vec2, theta, dist float64, hit bool) int {
	return g.IntegrateBeamTo(from, from.Add(geom.V(dist, 0).Rotate(theta)), hit)
}

// IntegrateBeamTo is IntegrateBeam with the world-frame endpoint already
// computed — the SLAM/AMCL hot paths derive endpoints from per-scan trig
// tables instead of a Sincos per beam, and hand them in directly.
// Only tiles actually written are allocated or copy-on-written, so a beam
// through already-exclusive tiles costs no allocation. The traversal is
// the standard Bresenham walk (same cell sequence as geom.Bresenham),
// inlined so the per-cell work is an integer accumulate-and-clamp with
// no callback dispatch.
func (g *LogOdds) IntegrateBeamTo(from, end geom.Vec2, hit bool) int {
	a := g.WorldToCell(from)
	b := g.WorldToCell(end)
	// Per-beam quantization of the update parameters keeps the exported
	// float64 fields authoritative (callers may tune them at any time) at
	// the cost of four rounds per beam — noise next to the walk itself.
	locc, lfree := int32(Quantize(g.LOcc)), int32(Quantize(g.LFree))
	lmin, lmax := int32(Quantize(g.LMin)), int32(Quantize(g.LMax))
	n := 0
	// Bresenham walks cross tile borders every ≤32 steps; cache the last
	// writable tile so the common in-tile step is compare-and-store with
	// no table lookup (and no tile-row multiply).
	curTx, curTy := -1, -1
	var cur *tile
	dx, dy := b.X-a.X, b.Y-a.Y
	sx, sy := 1, 1
	if dx < 0 {
		dx, sx = -dx, -1
	}
	if dy < 0 {
		dy, sy = -dy, -1
	}
	errv := dx - dy
	c := a
	for {
		if !g.InBounds(c) {
			return n
		}
		tx, ty := c.X>>tileShift, c.Y>>tileShift
		inner := (c.Y&tileMask)<<tileShift | c.X&tileMask
		if c == b {
			if hit {
				if tx != curTx || ty != curTy {
					cur, curTx, curTy = g.writable(ty*g.tilesW+tx), tx, ty
				}
				v := int32(cur.l[inner]) + locc
				if v > lmax {
					v = lmax
				} else if v < -quantMax {
					v = -quantMax
				}
				cur.l[inner] = int16(v)
			}
			// A max-range miss leaves the endpoint untouched: the beam
			// only proves freeness up to (not at) max range.
			n++
			return n
		}
		if tx != curTx || ty != curTy {
			cur, curTx, curTy = g.writable(ty*g.tilesW+tx), tx, ty
		}
		v := int32(cur.l[inner]) + lfree
		if v < lmin {
			v = lmin
		} else if v > quantMax {
			v = quantMax
		}
		cur.l[inner] = int16(v)
		n++
		e2 := 2 * errv
		if e2 > -dy {
			errv -= dy
			c.X += sx
		}
		if e2 < dx {
			errv += dx
			c.Y += sy
		}
	}
}

// ToMap thresholds the log-odds grid into a ternary map: prob > occThresh
// is Occupied, prob < freeThresh is Free, untouched cells are Unknown.
func (g *LogOdds) ToMap(freeThresh, occThresh float64) *Map {
	m := NewMap(g.Width, g.Height, g.Resolution, g.Origin, Unknown)
	for ty := 0; ty < g.tilesH; ty++ {
		for tx := 0; tx < g.tilesW; tx++ {
			t := g.tiles[ty*g.tilesW+tx]
			if t == nil {
				continue
			}
			ymax := min((ty+1)<<tileShift, g.Height)
			xmax := min((tx+1)<<tileShift, g.Width)
			for y := ty << tileShift; y < ymax; y++ {
				for x := tx << tileShift; x < xmax; x++ {
					q := t.l[(y&tileMask)<<tileShift|x&tileMask]
					if q == 0 {
						continue
					}
					p := Logistic(q)
					c := geom.Cell{X: x, Y: y}
					switch {
					case p > occThresh:
						m.Set(c, Occupied)
					case p < freeThresh:
						m.Set(c, Free)
					}
				}
			}
		}
	}
	return m
}

// ---------------------------------------------------------------------------
// Distance transform.

// DistanceTransform computes, for every cell, the Euclidean distance in
// meters to the nearest Occupied cell, using the two-pass chamfer
// approximation (3-4 mask) which is accurate to within ~8% — sufficient
// for inflation layers and trajectory obstacle costs.
func DistanceTransform(m *Map) []float64 {
	const inf = math.MaxFloat64 / 4
	w, h := m.Width, m.Height
	d := make([]float64, w*h)
	for i, c := range m.Cells {
		if c == Occupied {
			d[i] = 0
		} else {
			d[i] = inf
		}
	}
	straight := m.Resolution
	diag := m.Resolution * math.Sqrt2
	idx := func(x, y int) int { return y*w + x }
	relax := func(i int, j int, cost float64) {
		if d[j]+cost < d[i] {
			d[i] = d[j] + cost
		}
	}
	// Forward pass.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := idx(x, y)
			if x > 0 {
				relax(i, idx(x-1, y), straight)
			}
			if y > 0 {
				relax(i, idx(x, y-1), straight)
				if x > 0 {
					relax(i, idx(x-1, y-1), diag)
				}
				if x < w-1 {
					relax(i, idx(x+1, y-1), diag)
				}
			}
		}
	}
	// Backward pass.
	for y := h - 1; y >= 0; y-- {
		for x := w - 1; x >= 0; x-- {
			i := idx(x, y)
			if x < w-1 {
				relax(i, idx(x+1, y), straight)
			}
			if y < h-1 {
				relax(i, idx(x, y+1), straight)
				if x < w-1 {
					relax(i, idx(x+1, y+1), diag)
				}
				if x > 0 {
					relax(i, idx(x-1, y+1), diag)
				}
			}
		}
	}
	return d
}

// ---------------------------------------------------------------------------
// Text map format. '#' = occupied, '.' = free, '?' = unknown; row 0 of the
// text is the TOP of the map (highest y), matching how humans draw maps.

// ParseText builds a map from an ASCII drawing. All lines must have equal
// length after trailing-space trimming is NOT applied (use explicit '.').
func ParseText(text string, res float64, origin geom.Vec2) (*Map, error) {
	lines := strings.Split(strings.Trim(text, "\n"), "\n")
	if len(lines) == 0 || len(lines[0]) == 0 {
		return nil, fmt.Errorf("grid: empty map text")
	}
	w, h := len(lines[0]), len(lines)
	m := NewMap(w, h, res, origin, Free)
	for row, line := range lines {
		if len(line) != w {
			return nil, fmt.Errorf("grid: line %d has width %d, want %d", row, len(line), w)
		}
		y := h - 1 - row
		for x, ch := range line {
			var v int8
			switch ch {
			case '#':
				v = Occupied
			case '.', ' ':
				v = Free
			case '?':
				v = Unknown
			default:
				return nil, fmt.Errorf("grid: bad char %q at row %d col %d", ch, row, x)
			}
			m.Set(geom.Cell{X: x, Y: y}, v)
		}
	}
	return m, nil
}

// WriteText renders the map in the same ASCII format ParseText reads.
func WriteText(w io.Writer, m *Map) error {
	bw := bufio.NewWriter(w)
	for row := 0; row < m.Height; row++ {
		y := m.Height - 1 - row
		for x := 0; x < m.Width; x++ {
			var ch byte
			switch m.At(geom.Cell{X: x, Y: y}) {
			case Occupied:
				ch = '#'
			case Free:
				ch = '.'
			default:
				ch = '?'
			}
			if err := bw.WriteByte(ch); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
