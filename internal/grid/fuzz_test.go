package grid

import (
	"testing"

	"lgvoffload/internal/geom"
)

// FuzzParseText throws arbitrary text at the map parser: it must either
// return a well-formed map or an error, never panic.
func FuzzParseText(f *testing.F) {
	f.Add("####\n#..#\n####")
	f.Add("")
	f.Add("#\n##")
	f.Add("?.#\n.#?")
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ParseText(text, 0.1, geom.V(0, 0))
		if err != nil {
			return
		}
		if m.Width <= 0 || m.Height <= 0 {
			t.Fatalf("parsed map with degenerate dims %dx%d", m.Width, m.Height)
		}
		if len(m.Cells) != m.Width*m.Height {
			t.Fatal("cell slice size mismatch")
		}
	})
}
