package grid

import (
	"math"
	"testing"

	"lgvoffload/internal/geom"
)

// FuzzParseText throws arbitrary text at the map parser: it must either
// return a well-formed map or an error, never panic.
func FuzzParseText(f *testing.F) {
	f.Add("####\n#..#\n####")
	f.Add("")
	f.Add("#\n##")
	f.Add("?.#\n.#?")
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ParseText(text, 0.1, geom.V(0, 0))
		if err != nil {
			return
		}
		if m.Width <= 0 || m.Height <= 0 {
			t.Fatalf("parsed map with degenerate dims %dx%d", m.Width, m.Height)
		}
		if len(m.Cells) != m.Width*m.Height {
			t.Fatal("cell slice size mismatch")
		}
	})
}

// FuzzIntegrateBeamFixed throws arbitrary beams at the fixed-point
// log-odds grid. Whatever the beam, the walk must not panic, every cell
// must stay inside the clamp bounds, and the result must agree with a
// float64 reference implementation of the same update rule to within the
// quantization error of a single observation.
func FuzzIntegrateBeamFixed(f *testing.F) {
	f.Add(0.55, 2.55, 0.0, 2.0, true)
	f.Add(0.55, 2.55, math.Pi/3, 3.5, false)
	f.Add(-1.0, -1.0, -2.5, 10.0, true)     // starts out of bounds
	f.Add(3.15, 3.15, 2.0, 0.0, true)       // zero-length beam
	f.Add(1.0, 1.0, 0.7853981, 500.0, true) // exits the map
	f.Add(2.0, 2.0, math.Pi, 1e-9, false)
	f.Fuzz(func(t *testing.T, fx, fy, theta, dist float64, hit bool) {
		for _, v := range []float64{fx, fy, theta, dist} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return
			}
		}
		g := NewLogOdds(64, 64, 0.1, geom.V(0, 0))
		ref := &floatRefGrid{g: g, l: make([]float64, g.Width*g.Height)}
		from := geom.V(fx, fy)
		end := from.Add(geom.V(dist, 0).Rotate(theta))
		n := g.IntegrateBeamTo(from, end, hit)
		ref.integrate(from, end, hit)
		if n < 0 {
			t.Fatalf("negative cell count %d", n)
		}
		lo, hi := Quantize(math.Min(g.LMin, 0)), Quantize(math.Max(g.LMax, 0))
		for y := 0; y < g.Height; y++ {
			for x := 0; x < g.Width; x++ {
				c := geom.Cell{X: x, Y: y}
				q := g.AtQ(c)
				if q < lo || q > hi {
					t.Fatalf("cell (%d,%d) q=%d outside clamp [%d,%d]", x, y, q, lo, hi)
				}
				if d := math.Abs(Dequantize(q) - ref.l[y*g.Width+x]); d > 1.0/QuantScale {
					t.Fatalf("cell (%d,%d) diverged from float reference by %v", x, y, d)
				}
			}
		}
	})
}
