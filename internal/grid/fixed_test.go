package grid

import (
	"math"
	"testing"
	"testing/quick"

	"lgvoffload/internal/geom"
)

// TestQuantizeRoundTrip pins the fixed-point contract: any log-odds value
// in the representable range survives a Quantize/Dequantize round trip
// within half a quantum (the rounding bound), and quantization is exact
// on quantum multiples.
func TestQuantizeRoundTrip(t *testing.T) {
	const half = 0.5 / QuantScale
	f := func(raw int16) bool {
		// Map the int16 onto the representable log-odds range ±quantMax/QuantScale.
		l := float64(raw) / 32768.0 * (float64(quantMax) / QuantScale)
		back := Dequantize(Quantize(l))
		return math.Abs(back-l) <= half+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Quantum multiples are exact.
	for _, q := range []int16{0, 1, -1, 4096, -4096, quantMax, -quantMax} {
		if Quantize(Dequantize(q)) != q {
			t.Errorf("quantum multiple %d did not round-trip", q)
		}
	}
}

// TestQuantizeSaturation checks values beyond the representable range
// clamp symmetrically instead of wrapping.
func TestQuantizeSaturation(t *testing.T) {
	for _, tc := range []struct {
		l    float64
		want int16
	}{
		{8.0, quantMax},
		{-8.0, -quantMax},
		{1e18, quantMax},
		{-1e18, -quantMax},
		{math.Inf(1), quantMax},
		{math.Inf(-1), -quantMax},
		{float64(quantMax) / QuantScale, quantMax}, // exactly representable edge
	} {
		if got := Quantize(tc.l); got != tc.want {
			t.Errorf("Quantize(%v) = %d, want %d", tc.l, got, tc.want)
		}
	}
}

// TestLogisticTableDefinition checks the lookup tables against their
// defining expressions, including the exact neutral entries the
// branch-free matcher relies on.
func TestLogisticTableDefinition(t *testing.T) {
	if Logistic(0) != 0.5 {
		t.Errorf("Logistic(0) = %v, want exactly 0.5", Logistic(0))
	}
	if Score(0) != 0.0 {
		t.Errorf("Score(0) = %v, want exactly 0.0", Score(0))
	}
	for _, q := range []int16{1, -1, 100, -100, 4096, -4096, 16384, quantMax, -quantMax} {
		want := 1 / (1 + math.Exp(-Dequantize(q)))
		if got := Logistic(q); got != want {
			t.Errorf("Logistic(%d) = %v, want %v", q, got, want)
		}
		if got, want := Score(q), 2*Logistic(q)-1; got != want {
			t.Errorf("Score(%d) = %v, want %v", q, got, want)
		}
	}
	// Monotone in q (a logistic must be).
	prev := math.Inf(-1)
	for q := -quantMax; q <= quantMax; q += 257 {
		p := Logistic(int16(q))
		if p < prev {
			t.Fatalf("Logistic not monotone at q=%d", q)
		}
		prev = p
	}
}

// floatRefGrid is a plain float64 log-odds grid implementing the same
// beam update rule as LogOdds, used as the reference the fixed-point
// implementation is checked against.
type floatRefGrid struct {
	g *LogOdds
	l []float64
}

func (r *floatRefGrid) integrate(from, end geom.Vec2, hit bool) {
	a := r.g.WorldToCell(from)
	b := r.g.WorldToCell(end)
	geom.Bresenham(a, b, func(c geom.Cell) bool {
		if !r.g.InBounds(c) {
			return false
		}
		i := c.Y*r.g.Width + c.X
		if c == b {
			if hit {
				r.l[i] = math.Min(r.l[i]+r.g.LOcc, r.g.LMax)
			}
			return false
		}
		r.l[i] = math.Max(r.l[i]+r.g.LFree, r.g.LMin)
		return true
	})
}

// TestIntegrateBeamMatchesFloatReference integrates a realistic workload
// of beams through both the fixed-point grid and a float64 reference and
// bounds the divergence: per-observation quantization error is at most
// half a quantum, and the clamp bounds keep the accumulated error well
// under one quantum per observation.
func TestIntegrateBeamMatchesFloatReference(t *testing.T) {
	g := NewLogOdds(80, 80, 0.05, geom.V(0, 0))
	ref := &floatRefGrid{g: g, l: make([]float64, g.Width*g.Height)}
	from := geom.V(2.0, 2.0)
	const beams = 180
	const sweeps = 12
	for s := 0; s < sweeps; s++ {
		for i := 0; i < beams; i++ {
			theta := -math.Pi + 2*math.Pi*float64(i)/beams
			dist := 0.4 + 1.4*math.Abs(math.Sin(3*theta+float64(s)))
			hit := i%7 != 0
			end := from.Add(geom.V(dist, 0).Rotate(theta))
			g.IntegrateBeamTo(from, end, hit)
			ref.integrate(from, end, hit)
		}
	}
	// Each cell saw at most sweeps*k observations; allow one quantum of
	// drift per observation plus the clamp-boundary rounding.
	tol := float64(sweeps*beams) / QuantScale
	worst := 0.0
	for y := 0; y < g.Height; y++ {
		for x := 0; x < g.Width; x++ {
			c := geom.Cell{X: x, Y: y}
			d := math.Abs(g.At(c) - ref.l[y*g.Width+x])
			if d > worst {
				worst = d
			}
			if d > tol {
				t.Fatalf("cell (%d,%d): fixed=%v ref=%v diff=%v > tol %v",
					x, y, g.At(c), ref.l[y*g.Width+x], d, tol)
			}
			// Touched must agree exactly: a cell the reference saw is
			// non-zero in fixed point too (increments are ≥ many quanta).
			if (ref.l[y*g.Width+x] != 0) != g.Touched(c) {
				t.Fatalf("cell (%d,%d): touched mismatch (ref=%v fixed q=%d)",
					x, y, ref.l[y*g.Width+x], g.AtQ(c))
			}
		}
	}
	if worst > 0.01 {
		t.Errorf("worst divergence %v exceeds 0.01 log-odds", worst)
	}
}

// TestIntegrateBeamClampSaturation drives cells against both clamp
// bounds, including bounds beyond the representable fixed-point range,
// which must saturate at the int16 limits instead of wrapping.
func TestIntegrateBeamClampSaturation(t *testing.T) {
	g := NewLogOdds(20, 20, 0.1, geom.V(0, 0))
	from := geom.V(0.15, 1.05)
	for i := 0; i < 500; i++ {
		g.IntegrateBeam(from, 0, 1.0, true)
	}
	endCell := g.WorldToCell(from.Add(geom.V(1, 0)))
	if got := g.At(endCell); got != Dequantize(Quantize(g.LMax)) {
		t.Errorf("occupied clamp: At = %v, want %v", got, Dequantize(Quantize(g.LMax)))
	}
	midCell := g.WorldToCell(from.Add(geom.V(0.5, 0)))
	if got := g.At(midCell); got != Dequantize(Quantize(g.LMin)) {
		t.Errorf("free clamp: At = %v, want %v", got, Dequantize(Quantize(g.LMin)))
	}

	// Bounds past the representable range saturate at ±quantMax quanta.
	g2 := NewLogOdds(20, 20, 0.1, geom.V(0, 0))
	g2.LMax, g2.LMin = 100, -100
	for i := 0; i < 50000; i++ {
		g2.IntegrateBeam(from, 0, 1.0, true)
	}
	if q := g2.AtQ(endCell); q != quantMax {
		t.Errorf("unbounded occupied accumulation: q = %d, want %d", q, quantMax)
	}
	if q := g2.AtQ(midCell); q != -quantMax {
		t.Errorf("unbounded free accumulation: q = %d, want %d", q, -quantMax)
	}
}

// TestIntegrateBeamToMatchesIntegrateBeam pins that the endpoint-form
// entry point is exactly the polar-form one (same cells, same counts).
func TestIntegrateBeamToMatchesIntegrateBeam(t *testing.T) {
	ga := NewLogOdds(60, 60, 0.05, geom.V(0, 0))
	gb := NewLogOdds(60, 60, 0.05, geom.V(0, 0))
	from := geom.V(1.5, 1.5)
	for i := 0; i < 90; i++ {
		theta := -math.Pi + 2*math.Pi*float64(i)/90
		dist := 0.3 + float64(i%11)*0.1
		hit := i%5 != 0
		na := ga.IntegrateBeam(from, theta, dist, hit)
		nb := gb.IntegrateBeamTo(from, from.Add(geom.V(dist, 0).Rotate(theta)), hit)
		if na != nb {
			t.Fatalf("beam %d: cell counts differ (%d vs %d)", i, na, nb)
		}
	}
	for y := 0; y < ga.Height; y++ {
		for x := 0; x < ga.Width; x++ {
			c := geom.Cell{X: x, Y: y}
			if ga.AtQ(c) != gb.AtQ(c) {
				t.Fatalf("cell (%d,%d) differs", x, y)
			}
		}
	}
}
