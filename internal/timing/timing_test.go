package timing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxVelocityBasics(t *testing.T) {
	// Zero processing time: v = a(√(2d/a)) = √(2ad).
	v := MaxVelocity(0, 2.5, 0.25)
	want := math.Sqrt(2 * 2.5 * 0.25)
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("v(tp=0) = %v, want %v", v, want)
	}
	// Degenerate inputs.
	if MaxVelocity(0.1, 0, 0.25) != 0 || MaxVelocity(0.1, 2.5, 0) != 0 {
		t.Error("degenerate inputs must return 0")
	}
	// Negative tp treated as zero.
	if MaxVelocity(-1, 2.5, 0.25) != MaxVelocity(0, 2.5, 0.25) {
		t.Error("negative tp should clamp to 0")
	}
}

func TestMaxVelocityDecreasesWithProcessingTime(t *testing.T) {
	prev := math.Inf(1)
	for _, tp := range []float64{0, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2} {
		v := MaxVelocity(tp, 2.5, 0.25)
		if v >= prev {
			t.Errorf("v(tp=%v) = %v did not decrease (prev %v)", tp, v, prev)
		}
		if v <= 0 {
			t.Errorf("v(tp=%v) = %v must stay positive", tp, v)
		}
		prev = v
	}
}

func TestMaxVelocityStoppingConstraint(t *testing.T) {
	// Physical meaning: traveling at v for tp then decelerating at amax
	// must cover at most d: v·tp + v²/(2a) ≤ d.
	f := func(tpr, ar, dr uint8) bool {
		tp := float64(tpr) * 0.01
		a := 0.5 + float64(ar)*0.05
		d := 0.05 + float64(dr)*0.01
		v := MaxVelocity(tp, a, d)
		travel := v*tp + v*v/(2*a)
		return travel <= d+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProcessingTimeInverts(t *testing.T) {
	f := func(tpr uint8) bool {
		tp := float64(tpr) * 0.01
		const a, d = 2.5, 0.25
		v := MaxVelocity(tp, a, d)
		back := ProcessingTime(v, a, d)
		return math.Abs(back-tp) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(ProcessingTime(0, 2.5, 0.25), 1) {
		t.Error("v=0 should give infinite budget")
	}
}

func TestVDPBreakdownTotal(t *testing.T) {
	b := VDPBreakdown{RobotProc: 0.01, CloudProc: 0.002, Network: 0.004}
	if math.Abs(b.Total()-0.016) > 1e-12 {
		t.Errorf("total = %v", b.Total())
	}
}

func TestClockSplitsMovingStandby(t *testing.T) {
	c := NewClock()
	c.Tick(2, 0.2)     // moving
	c.Tick(1, 0.0)     // standby
	c.Tick(0.5, 0.005) // below threshold -> standby
	c.Tick(-1, 1)      // ignored
	if c.Moving() != 2 {
		t.Errorf("moving = %v", c.Moving())
	}
	if c.Standby() != 1.5 {
		t.Errorf("standby = %v", c.Standby())
	}
	if c.Total() != 3.5 {
		t.Errorf("total = %v", c.Total())
	}
}

func TestClockNegativeSpeedIsMoving(t *testing.T) {
	c := NewClock()
	c.Tick(1, -0.2)
	if c.Moving() != 1 {
		t.Error("reverse driving is still moving")
	}
}
