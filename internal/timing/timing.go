// Package timing implements the paper's mission completion time model
// (Eq. 2a–2c): total time splits into standby time (the LGV suspended
// waiting for computation) and moving time, and the safe maximum velocity
// is derived from the velocity-dependent-path processing time through the
// obstacle-avoidance stopping constraint:
//
//	v_max = a_max · (√(t_p² + 2d/a_max) − t_p)   (Eq. 2c)
//
// where t_p is the VDP makespan (local + cloud processing + network
// latency), a_max the robot's deceleration limit, and d the required
// stopping distance. Faster computation (smaller t_p) permits a higher
// safe velocity, which is the mechanism by which offloading shortens
// missions.
package timing

import "math"

// MaxVelocity computes Eq. 2c: the maximum safe velocity for a control
// pipeline with processing time tp, acceleration limit amax, and required
// stopping distance d. Degenerate inputs return 0.
func MaxVelocity(tp, amax, d float64) float64 {
	if amax <= 0 || d <= 0 {
		return 0
	}
	if tp < 0 {
		tp = 0
	}
	return amax * (math.Sqrt(tp*tp+2*d/amax) - tp)
}

// ProcessingTime inverts Eq. 2c: the largest VDP makespan that still
// permits the given velocity. It returns +Inf when v is non-positive.
func ProcessingTime(v, amax, d float64) float64 {
	if v <= 0 {
		return math.Inf(1)
	}
	// From v = a(√(t²+2d/a) − t):  t = d/v − v/(2a).
	return d/v - v/(2*amax)
}

// VDPBreakdown is the makespan decomposition of Eq. 2b: processing time
// on the robot, processing time in the cloud, and the network latency of
// crossing between them.
type VDPBreakdown struct {
	RobotProc float64 // t_p^R
	CloudProc float64 // t_p^C
	Network   float64 // t_c (round trip across the offloaded boundary)
}

// Total returns t_p = t_p^R + t_p^C + t_c.
func (b VDPBreakdown) Total() float64 { return b.RobotProc + b.CloudProc + b.Network }

// Clock tracks the Eq. 2a decomposition of a running mission: moving
// time, standby time, and the total. The engine reports each control
// period as moving (|v| above the threshold) or standby.
type Clock struct {
	// StandbyVel is the velocity magnitude below which the LGV counts as
	// suspended rather than moving.
	StandbyVel float64

	moving  float64
	standby float64
}

// NewClock returns a clock with a 1 cm/s standby threshold.
func NewClock() *Clock { return &Clock{StandbyVel: 0.01} }

// Tick records dt seconds at the given commanded speed.
func (c *Clock) Tick(dt, speed float64) {
	if dt <= 0 {
		return
	}
	if math.Abs(speed) > c.StandbyVel {
		c.moving += dt
	} else {
		c.standby += dt
	}
}

// Moving returns T_m, the accumulated moving time.
func (c *Clock) Moving() float64 { return c.moving }

// Standby returns T_s, the accumulated standby time.
func (c *Clock) Standby() float64 { return c.standby }

// Total returns T = T_s + T_m (Eq. 2a).
func (c *Clock) Total() float64 { return c.moving + c.standby }
