package costmap

import (
	"math/rand"
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/world"
)

func newTestMap() (*Costmap, *grid.Map) {
	m := world.EmptyRoomMap(4, 4, 0.05)
	cfg := DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	c := New(cfg)
	c.SetStatic(m)
	return c, m
}

func TestStaticLayerLethalWalls(t *testing.T) {
	c, m := newTestMap()
	if c.Cost(geom.Cell{X: 0, Y: 0}) != LethalCost {
		t.Error("wall cell should be lethal")
	}
	if got := c.Cost(m.WorldToCell(geom.V(2, 2))); got != FreeCost {
		t.Errorf("room center cost = %d", got)
	}
}

func TestInflationGradient(t *testing.T) {
	c, m := newTestMap()
	// Walk from the wall toward the center: cost must be non-increasing.
	prev := c.Cost(m.WorldToCell(geom.V(0.025, 2)))
	if prev != LethalCost {
		t.Fatalf("wall = %d", prev)
	}
	for x := 0.075; x < 1.0; x += 0.05 {
		cur := c.Cost(m.WorldToCell(geom.V(x, 2)))
		if cur > prev {
			t.Fatalf("cost increased away from wall at x=%v: %d > %d", x, cur, prev)
		}
		prev = cur
	}
	// Inside the robot radius of the wall: at least inscribed.
	if got := c.Cost(m.WorldToCell(geom.V(0.1, 2))); got < InscribedCost {
		t.Errorf("cost at robot radius = %d, want >= %d", got, InscribedCost)
	}
	// Beyond the inflation radius: free.
	if got := c.Cost(m.WorldToCell(geom.V(2, 2))); got != FreeCost {
		t.Errorf("far cost = %d", got)
	}
}

func TestObstacleMarking(t *testing.T) {
	c, m := newTestMap()
	l := sensor.NewLaser(36, 3.5, 0, rand.New(rand.NewSource(1)))
	// Place a virtual obstacle by sensing a world that has one.
	obsWorld := m.Clone()
	obsWorld.Set(obsWorld.WorldToCell(geom.V(2.5, 2.0)), grid.Occupied)
	pose := geom.P(1.2, 2.0, 0)
	scan := l.Sense(obsWorld, pose, 0)
	st := c.Update(pose, scan)
	if st.CellsMarked == 0 || st.CellsCleared == 0 || st.CellsInflated == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := c.Cost(c.WorldToCell(geom.V(2.5, 2.0))); got != LethalCost {
		t.Errorf("sensed obstacle cost = %d", got)
	}
}

func TestObstacleClearing(t *testing.T) {
	c, m := newTestMap()
	l := sensor.NewLaser(36, 3.5, 0, rand.New(rand.NewSource(1)))
	pose := geom.P(1.2, 2.0, 0)

	// First scan sees an obstacle.
	obsWorld := m.Clone()
	obsWorld.Set(obsWorld.WorldToCell(geom.V(2.5, 2.0)), grid.Occupied)
	c.Update(pose, l.Sense(obsWorld, pose, 0))
	if c.Cost(c.WorldToCell(geom.V(2.5, 2.0))) != LethalCost {
		t.Fatal("obstacle not marked")
	}
	// Second scan sees it gone: the beam passes through and clears it.
	c.Update(pose, l.Sense(m, pose, 1))
	if got := c.Cost(c.WorldToCell(geom.V(2.5, 2.0))); got == LethalCost {
		t.Errorf("obstacle not cleared, cost = %d", got)
	}
}

func TestUnknownHandling(t *testing.T) {
	m := grid.NewMap(40, 40, 0.05, geom.V(0, 0), grid.Unknown)
	for y := 10; y < 30; y++ {
		for x := 10; x < 30; x++ {
			m.Set(geom.Cell{X: x, Y: y}, grid.Free)
		}
	}
	cfg := DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	c := New(cfg)
	c.SetStatic(m)
	if c.Cost(geom.Cell{X: 0, Y: 0}) != UnknownCost {
		t.Error("unknown cell should cost UnknownCost")
	}
	if c.Cost(geom.Cell{X: 20, Y: 20}) != FreeCost {
		t.Error("known free cell should be free")
	}
	// UnknownIsLethal mode.
	cfg.UnknownIsLethal = true
	c2 := New(cfg)
	c2.SetStatic(m)
	if c2.Cost(geom.Cell{X: 0, Y: 0}) != LethalCost {
		t.Error("unknown should be lethal in conservative mode")
	}
}

func TestFootprintCost(t *testing.T) {
	c, _ := newTestMap()
	if got := c.FootprintCost(geom.V(2, 2)); got != FreeCost {
		t.Errorf("center footprint = %d", got)
	}
	if got := c.FootprintCost(geom.V(0.08, 2)); got < InscribedCost {
		t.Errorf("footprint against wall = %d", got)
	}
}

func TestIsTraversable(t *testing.T) {
	c, m := newTestMap()
	if !c.IsTraversable(m.WorldToCell(geom.V(2, 2))) {
		t.Error("center must be traversable")
	}
	if c.IsTraversable(geom.Cell{X: 0, Y: 0}) {
		t.Error("wall must not be traversable")
	}
	if c.IsTraversable(geom.Cell{X: -5, Y: 0}) {
		t.Error("out of bounds must not be traversable")
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	c, _ := newTestMap()
	snap := c.Snapshot()
	c2 := New(c.Config())
	c2.LoadSnapshot(snap)
	for y := 0; y < c.cfg.Height; y++ {
		for x := 0; x < c.cfg.Width; x++ {
			cell := geom.Cell{X: x, Y: y}
			if c.Cost(cell) != c2.Cost(cell) {
				t.Fatalf("snapshot mismatch at %v", cell)
			}
		}
	}
	// Wrong-size snapshot is ignored.
	c2.LoadSnapshot([]uint8{1, 2, 3})
	if c2.Cost(geom.Cell{X: 0, Y: 0}) != LethalCost {
		t.Error("bad snapshot should be ignored")
	}
}

func TestUpdateStatsTotal(t *testing.T) {
	s := UpdateStats{CellsCleared: 1, CellsMarked: 2, CellsInflated: 3}
	if s.Total() != 6 {
		t.Errorf("total = %d", s.Total())
	}
}

func TestOutOfRangeBeamDoesNotMark(t *testing.T) {
	c, m := newTestMap()
	// Beam hits the wall ~2.8 m away but MaxObstacleDist is 3.0; use a
	// custom config with a short marking range to verify the cutoff.
	cfg := c.Config()
	cfg.MaxObstacleDist = 1.0
	c2 := New(cfg)
	c2.SetStatic(grid.NewMap(m.Width, m.Height, m.Resolution, m.Origin, grid.Free))
	l := sensor.NewLaser(1, 3.5, 0, rand.New(rand.NewSource(1)))
	pose := geom.P(1.2, 2.0, 3.14159265) // aim the single -π beam at +x
	scan := l.Sense(m, pose, 0)
	st := c2.Update(pose, scan)
	if st.CellsMarked != 0 {
		t.Errorf("beam beyond MaxObstacleDist marked %d cells", st.CellsMarked)
	}
}

func BenchmarkCostmapUpdate(b *testing.B) {
	m := world.LabMap()
	cfg := DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	c := New(cfg)
	c.SetStatic(m)
	l := sensor.NewLDS01(0.01, rand.New(rand.NewSource(1)))
	pose := geom.P(1, 1, 0)
	scan := l.Sense(m, pose, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(pose, scan)
	}
}

func TestInflationKernelSymmetry(t *testing.T) {
	// Property: the inflated cost field around a single lethal cell must
	// be symmetric under the 8 grid symmetries.
	m := grid.NewMap(41, 41, 0.05, geom.V(0, 0), grid.Free)
	m.Set(geom.Cell{X: 20, Y: 20}, grid.Occupied)
	cfg := DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	c := New(cfg)
	c.SetStatic(m)
	for dy := 0; dy <= 10; dy++ {
		for dx := 0; dx <= 10; dx++ {
			ref := c.Cost(geom.Cell{X: 20 + dx, Y: 20 + dy})
			for _, p := range [][2]int{{-dx, dy}, {dx, -dy}, {-dx, -dy}, {dy, dx}, {-dy, dx}, {dy, -dx}, {-dy, -dx}} {
				got := c.Cost(geom.Cell{X: 20 + p[0], Y: 20 + p[1]})
				if got != ref {
					t.Fatalf("asymmetry at (%d,%d) vs (%d,%d): %d != %d",
						dx, dy, p[0], p[1], got, ref)
				}
			}
		}
	}
}

func TestRepeatedIdenticalUpdatesConverge(t *testing.T) {
	// Property: applying the same scan twice leaves the master grid
	// unchanged after the first application (idempotence of the layers).
	c, m := newTestMap()
	l := sensor.NewLaser(36, 3.5, 0, rand.New(rand.NewSource(2)))
	pose := geom.P(1.5, 2.0, 0.3)
	scan := l.Sense(m, pose, 0)
	c.Update(pose, scan)
	first := c.Snapshot()
	c.Update(pose, scan)
	second := c.Snapshot()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("identical update changed cell %d: %d -> %d", i, first[i], second[i])
		}
	}
}
