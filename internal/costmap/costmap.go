// Package costmap implements the layered costmap of the CostmapGen node
// (ROS costmap_2d): a static layer seeded from a known or SLAM-built map,
// an obstacle layer that marks laser endpoints and clears along beams,
// and an inflation layer that expands lethal obstacles by the robot
// radius with an exponential cost decay.
//
// CostmapGen is one of the paper's Energy-Critical Nodes and sits on the
// Velocity-Dependent Path, so every update reports how many cells it
// touched; the mission engine converts those counts into cycles for the
// platform model.
package costmap

import (
	"math"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/sensor"
)

// Cost values, matching costmap_2d conventions.
const (
	FreeCost      uint8 = 0
	InscribedCost uint8 = 253
	LethalCost    uint8 = 254
	UnknownCost   uint8 = 255
)

// Config parameterizes the costmap.
type Config struct {
	Width, Height int
	Resolution    float64
	Origin        geom.Vec2

	RobotRadius     float64 // inscribed radius for inflation, m
	InflationRadius float64 // total inflation distance, m
	CostScale       float64 // exponential decay rate of inflated cost
	MaxObstacleDist float64 // beams longer than this do not mark, m
	UnknownIsLethal bool    // treat unknown static cells as obstacles
}

// DefaultConfig returns a configuration suitable for the Turtlebot3 in
// the lab environments.
func DefaultConfig(w, h int, res float64, origin geom.Vec2) Config {
	return Config{
		Width: w, Height: h, Resolution: res, Origin: origin,
		RobotRadius:     0.105,
		InflationRadius: 0.45,
		CostScale:       8.0,
		MaxObstacleDist: 3.0,
		UnknownIsLethal: false,
	}
}

// UpdateStats reports the work done by one costmap update; the engine
// converts it into platform cycles.
type UpdateStats struct {
	CellsCleared  int // obstacle-layer raytrace clearing
	CellsMarked   int // obstacle-layer endpoint marking
	CellsInflated int // inflation-layer writes
}

// Total returns the total number of cell operations.
func (s UpdateStats) Total() int { return s.CellsCleared + s.CellsMarked + s.CellsInflated }

func (s UpdateStats) add(o UpdateStats) UpdateStats {
	return UpdateStats{
		s.CellsCleared + o.CellsCleared,
		s.CellsMarked + o.CellsMarked,
		s.CellsInflated + o.CellsInflated,
	}
}

// Costmap is the layered cost grid.
type Costmap struct {
	cfg Config

	static   []uint8 // static layer (lethal/free/unknown)
	obstacle []uint8 // obstacle layer (lethal where marked)
	master   []uint8 // combined + inflated result

	cellRadius    int     // inflation radius in cells
	kernel        []uint8 // precomputed inflation costs by cell offset
	kernelOffsets []geom.Cell
}

// New allocates a costmap; all layers start free.
func New(cfg Config) *Costmap {
	n := cfg.Width * cfg.Height
	c := &Costmap{
		cfg:      cfg,
		static:   make([]uint8, n),
		obstacle: make([]uint8, n),
		master:   make([]uint8, n),
	}
	c.buildKernel()
	return c
}

// buildKernel precomputes the inflation cost for every cell offset within
// the inflation radius: 253 inside the robot radius, exponentially
// decaying outside (cost = 252·exp(-scale·(d - r_robot))).
func (c *Costmap) buildKernel() {
	c.cellRadius = int(math.Ceil(c.cfg.InflationRadius / c.cfg.Resolution))
	for dy := -c.cellRadius; dy <= c.cellRadius; dy++ {
		for dx := -c.cellRadius; dx <= c.cellRadius; dx++ {
			d := math.Hypot(float64(dx), float64(dy)) * c.cfg.Resolution
			if d > c.cfg.InflationRadius {
				continue
			}
			var cost uint8
			switch {
			case dx == 0 && dy == 0:
				cost = LethalCost
			case d <= c.cfg.RobotRadius:
				cost = InscribedCost
			default:
				v := 252 * math.Exp(-c.cfg.CostScale*(d-c.cfg.RobotRadius))
				if v < 1 {
					continue
				}
				cost = uint8(v)
			}
			c.kernelOffsets = append(c.kernelOffsets, geom.Cell{X: dx, Y: dy})
			c.kernel = append(c.kernel, cost)
		}
	}
}

// Config returns the costmap configuration.
func (c *Costmap) Config() Config { return c.cfg }

func (c *Costmap) idx(cell geom.Cell) int { return cell.Y*c.cfg.Width + cell.X }

// InBounds reports whether the cell lies inside the costmap.
func (c *Costmap) InBounds(cell geom.Cell) bool {
	return cell.X >= 0 && cell.X < c.cfg.Width && cell.Y >= 0 && cell.Y < c.cfg.Height
}

// WorldToCell converts world coordinates to a cell.
func (c *Costmap) WorldToCell(p geom.Vec2) geom.Cell {
	return geom.Cell{
		X: int(math.Floor((p.X - c.cfg.Origin.X) / c.cfg.Resolution)),
		Y: int(math.Floor((p.Y - c.cfg.Origin.Y) / c.cfg.Resolution)),
	}
}

// CellToWorld returns the world coordinates of the cell center.
func (c *Costmap) CellToWorld(cell geom.Cell) geom.Vec2 {
	return geom.Vec2{
		X: c.cfg.Origin.X + (float64(cell.X)+0.5)*c.cfg.Resolution,
		Y: c.cfg.Origin.Y + (float64(cell.Y)+0.5)*c.cfg.Resolution,
	}
}

// SetStatic loads the static layer from an occupancy map (known map for
// navigation, or the SLAM map during exploration) and rebuilds the
// master grid. The map must share the costmap's geometry.
func (c *Costmap) SetStatic(m *grid.Map) UpdateStats {
	for i, v := range m.Cells {
		switch v {
		case grid.Occupied:
			c.static[i] = LethalCost
		case grid.Unknown:
			if c.cfg.UnknownIsLethal {
				c.static[i] = LethalCost
			} else {
				c.static[i] = UnknownCost
			}
		default:
			c.static[i] = FreeCost
		}
	}
	return c.rebuild()
}

// Update applies one laser scan taken from the given pose: clears the
// obstacle layer along each beam and marks endpoints, then recombines
// and re-inflates the master grid. It returns the work done.
func (c *Costmap) Update(pose geom.Pose, scan *sensor.Scan) UpdateStats {
	var st UpdateStats
	origin := c.WorldToCell(pose.Pos)
	for i := 0; i < scan.NumBeams(); i++ {
		r := scan.Ranges[i]
		end := scan.Endpoint(pose, i)
		endCell := c.WorldToCell(end)
		// Clear along the beam (excluding the endpoint when it marks).
		geom.Bresenham(origin, endCell, func(cell geom.Cell) bool {
			if !c.InBounds(cell) {
				return false
			}
			if cell == endCell {
				return false
			}
			if c.obstacle[c.idx(cell)] == LethalCost {
				c.obstacle[c.idx(cell)] = FreeCost
			}
			st.CellsCleared++
			return true
		})
		if scan.IsHit(i) && r <= c.cfg.MaxObstacleDist && c.InBounds(endCell) {
			c.obstacle[c.idx(endCell)] = LethalCost
			st.CellsMarked++
		}
	}
	return st.add(c.rebuild())
}

// rebuild combines static and obstacle layers into the master grid and
// applies inflation around every lethal cell.
func (c *Costmap) rebuild() UpdateStats {
	var st UpdateStats
	for i := range c.master {
		v := c.static[i]
		if c.obstacle[i] == LethalCost {
			v = LethalCost
		}
		c.master[i] = v
	}
	// Inflate: stamp the kernel around every lethal cell.
	w, h := c.cfg.Width, c.cfg.Height
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if c.static[i] != LethalCost && c.obstacle[i] != LethalCost {
				continue
			}
			for k, off := range c.kernelOffsets {
				nx, ny := x+off.X, y+off.Y
				if nx < 0 || ny < 0 || nx >= w || ny >= h {
					continue
				}
				j := ny*w + nx
				if cost := c.kernel[k]; c.master[j] != UnknownCost && cost > c.master[j] {
					c.master[j] = cost
					st.CellsInflated++
				} else if c.master[j] == UnknownCost && cost >= InscribedCost {
					c.master[j] = cost
					st.CellsInflated++
				}
			}
		}
	}
	return st
}

// Cost returns the master cost of a cell (UnknownCost out of bounds).
func (c *Costmap) Cost(cell geom.Cell) uint8 {
	if !c.InBounds(cell) {
		return UnknownCost
	}
	return c.master[c.idx(cell)]
}

// WorldCost returns the master cost at a world point.
func (c *Costmap) WorldCost(p geom.Vec2) uint8 { return c.Cost(c.WorldToCell(p)) }

// IsTraversable reports whether a cell is strictly below the inscribed
// threshold (safe for the robot center).
func (c *Costmap) IsTraversable(cell geom.Cell) bool {
	cost := c.Cost(cell)
	return cost < InscribedCost
}

// FootprintCost returns the worst master cost within the robot footprint
// centered at the world point, for trajectory feasibility checks. Cells
// count as inside the footprint when any part of their square intersects
// the disc, so coarse grids cannot hide obstacles between cell centers.
func (c *Costmap) FootprintCost(p geom.Vec2) uint8 {
	rCells := int(math.Ceil(c.cfg.RobotRadius/c.cfg.Resolution)) + 1
	center := c.WorldToCell(p)
	r2 := c.cfg.RobotRadius * c.cfg.RobotRadius
	half := c.cfg.Resolution / 2
	worst := FreeCost
	for dy := -rCells; dy <= rCells; dy++ {
		for dx := -rCells; dx <= rCells; dx++ {
			cell := geom.Cell{X: center.X + dx, Y: center.Y + dy}
			cw := c.CellToWorld(cell)
			closest := geom.V(
				geom.Clamp(p.X, cw.X-half, cw.X+half),
				geom.Clamp(p.Y, cw.Y-half, cw.Y+half),
			)
			if closest.DistSq(p) > r2 {
				continue
			}
			cost := c.Cost(cell)
			if cost == UnknownCost {
				// Unknown inside the footprint is treated as inscribed:
				// not an immediate collision, but maximally risky.
				cost = InscribedCost
			}
			if cost > worst {
				worst = cost
			}
		}
	}
	return worst
}

// Dims returns the costmap dimensions.
func (c *Costmap) Dims() (w, h int) { return c.cfg.Width, c.cfg.Height }

// Snapshot copies the master grid (for shipping to another host or for
// inspection in tests).
func (c *Costmap) Snapshot() []uint8 {
	out := make([]uint8, len(c.master))
	copy(out, c.master)
	return out
}

// LoadSnapshot replaces the master grid, used when a remote host streams
// a precomputed costmap to the robot. The layers are not modified.
func (c *Costmap) LoadSnapshot(master []uint8) {
	if len(master) == len(c.master) {
		copy(c.master, master)
	}
}
