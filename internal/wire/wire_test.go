package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitivesRoundtrip(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.Varint(-12345)
	e.Float64(math.Pi)
	e.Float32(2.5)
	e.Bool(true)
	e.Bool(false)
	e.String("hello, 世界")
	e.BytesField([]byte{1, 2, 3})
	e.Float64Slice([]float64{1.5, -2.5})
	e.Int8Slice([]int8{-1, 0, 100})

	d := NewDecoder(e.Bytes())
	if d.Uvarint() != 0 || d.Uvarint() != 1<<40 {
		t.Error("uvarint")
	}
	if d.Varint() != -12345 {
		t.Error("varint")
	}
	if d.Float64() != math.Pi {
		t.Error("float64")
	}
	if d.Float32() != 2.5 {
		t.Error("float32")
	}
	if !d.Bool() || d.Bool() {
		t.Error("bool")
	}
	if d.String() != "hello, 世界" {
		t.Error("string")
	}
	if !bytes.Equal(d.BytesField(), []byte{1, 2, 3}) {
		t.Error("bytes")
	}
	fs := d.Float64Slice()
	if len(fs) != 2 || fs[0] != 1.5 || fs[1] != -2.5 {
		t.Error("float64 slice")
	}
	is := d.Int8Slice()
	if len(is) != 3 || is[0] != -1 || is[2] != 100 {
		t.Error("int8 slice")
	}
	if d.Err() != nil {
		t.Errorf("err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

func TestVarintRoundtripProperty(t *testing.T) {
	f := func(u uint64, v int64, fl float64, s string) bool {
		e := NewEncoder(0)
		e.Uvarint(u)
		e.Varint(v)
		e.Float64(fl)
		e.String(s)
		d := NewDecoder(e.Bytes())
		gu, gv, gf, gs := d.Uvarint(), d.Varint(), d.Float64(), d.String()
		if d.Err() != nil {
			return false
		}
		sameF := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		return gu == u && gv == v && sameF && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{})
	d.Float64()
	if d.Err() != ErrShortBuffer {
		t.Errorf("err = %v", d.Err())
	}
	// Error sticks: further reads return zero without panicking.
	if d.Uvarint() != 0 || d.String() != "" || d.Bool() {
		t.Error("reads after error should return zero values")
	}
}

func TestDecoderTruncatedString(t *testing.T) {
	e := NewEncoder(0)
	e.String("hello")
	b := e.Bytes()[:3] // cut mid-string
	d := NewDecoder(b)
	if d.String() != "" || d.Err() != ErrTooLong {
		t.Errorf("err = %v", d.Err())
	}
}

func TestDecoderTruncatedFloatSlice(t *testing.T) {
	e := NewEncoder(0)
	e.Float64Slice(make([]float64, 10))
	d := NewDecoder(e.Bytes()[:20])
	if d.Float64Slice() != nil || d.Err() == nil {
		t.Error("truncated slice must fail")
	}
}

func TestDecoderHostileLength(t *testing.T) {
	// A declared length far beyond the buffer must not allocate/panic.
	e := NewEncoder(0)
	e.Uvarint(1 << 50)
	d := NewDecoder(e.Bytes())
	if d.BytesField() != nil || d.Err() != ErrTooLong {
		t.Errorf("hostile length: err = %v", d.Err())
	}
}

// TestDecoderOverflowingLength feeds length prefixes whose byte size
// computation would wrap a naive `n*8 > Remaining()` check. Every slice
// reader must reject them with ErrTooLong instead of allocating or
// reading out of bounds.
func TestDecoderOverflowingLength(t *testing.T) {
	hostile := []uint64{
		1 << 61,   // n*8 wraps to 0 on 64-bit int
		1<<63 - 1, // int(n) would be huge but positive
		1<<64 - 8, // int(n) negative
		1<<62 + 1, // n*8 wraps negative
		uint64(1<<63) + 7,
	}
	for _, n := range hostile {
		for _, read := range []struct {
			name string
			do   func(d *Decoder) bool // true when zero value returned
		}{
			{"Float64Slice", func(d *Decoder) bool { return d.Float64Slice() == nil }},
			{"Int8Slice", func(d *Decoder) bool { return d.Int8Slice() == nil }},
			{"BytesField", func(d *Decoder) bool { return d.BytesField() == nil }},
			{"String", func(d *Decoder) bool { return d.String() == "" }},
		} {
			e := NewEncoder(0)
			e.Uvarint(n)
			e.Float64(1) // a few real bytes so Remaining() > 0
			d := NewDecoder(e.Bytes())
			if !read.do(d) || d.Err() != ErrTooLong {
				t.Errorf("%s(n=%d): value leaked or err = %v", read.name, n, d.Err())
			}
		}
	}
}

func TestDecoderBorrowBytesField(t *testing.T) {
	e := NewEncoder(0)
	payload := []byte{1, 2, 3, 4}
	e.BytesField(payload)
	buf := e.Bytes()

	// Borrow mode returns a subslice of the input buffer.
	b := NewDecoder(buf).Borrow().BytesField()
	if len(b) != 4 || &b[0] != &buf[1] {
		t.Error("borrowed field should alias the input buffer")
	}
	if cap(b) != len(b) {
		t.Error("borrowed field must be capacity-capped")
	}
	// Default mode copies.
	c := NewDecoder(buf).BytesField()
	if len(c) != 4 || &c[0] == &buf[1] {
		t.Error("default BytesField must copy")
	}
}

func TestFloat64SliceIntoReuses(t *testing.T) {
	e := NewEncoder(0)
	e.Float64Slice([]float64{1, 2, 3})
	scratch := make([]float64, 0, 8)
	got := NewDecoder(e.Bytes()).Float64SliceInto(scratch)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("decoded %v", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("Into should reuse the scratch backing array")
	}
	// Capacity too small: allocates.
	small := make([]float64, 0, 1)
	got2 := NewDecoder(e.Bytes()).Float64SliceInto(small)
	if len(got2) != 3 {
		t.Fatalf("decoded %v", got2)
	}
}

func TestInt8SliceIntoReuses(t *testing.T) {
	e := NewEncoder(0)
	e.Int8Slice([]int8{-1, 2, -3})
	scratch := make([]int8, 0, 4)
	got := NewDecoder(e.Bytes()).Int8SliceInto(scratch)
	if len(got) != 3 || got[0] != -1 || got[2] != -3 {
		t.Fatalf("decoded %v", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("Into should reuse the scratch backing array")
	}
}

func TestEncoderPoolRoundtrip(t *testing.T) {
	e := GetEncoder()
	if e.Len() != 0 {
		t.Fatal("pooled encoder not reset")
	}
	e.Float64(42)
	PutEncoder(e)
	e2 := GetEncoder()
	defer PutEncoder(e2)
	if e2.Len() != 0 {
		t.Error("reused encoder must come back reset")
	}
}

func TestEncodedSizeMatchesEncodeFrame(t *testing.T) {
	m := &fakeMsg{A: 12345, B: "hello"}
	if got, want := EncodedSize(m), len(EncodeFrame(m)); got != want {
		t.Errorf("EncodedSize = %d, len(EncodeFrame) = %d", got, want)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(16)
	e.Float64(1)
	if e.Len() != 8 {
		t.Errorf("len = %d", e.Len())
	}
	e.Reset()
	if e.Len() != 0 {
		t.Error("reset failed")
	}
}

type fakeMsg struct {
	A uint64
	B string
}

func (*fakeMsg) Kind() uint16 { return 999 }
func (m *fakeMsg) MarshalWire(e *Encoder) {
	e.Uvarint(m.A)
	e.String(m.B)
}
func (m *fakeMsg) UnmarshalWire(d *Decoder) error {
	m.A = d.Uvarint()
	m.B = d.String()
	return d.Err()
}

func TestFrameRoundtrip(t *testing.T) {
	Register(999, func() Message { return &fakeMsg{} })
	in := &fakeMsg{A: 7, B: "x"}
	b := EncodeFrame(in)
	out, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(*fakeMsg)
	if !ok || got.A != 7 || got.B != "x" {
		t.Errorf("got %#v", out)
	}
}

func TestFrameUnknownKind(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(54321)
	if _, err := DecodeFrame(e.Bytes()); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestFrameEmpty(t *testing.T) {
	if _, err := DecodeFrame(nil); err == nil {
		t.Error("empty frame must error")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register must panic")
		}
	}()
	Register(998, func() Message { return &fakeMsg{} })
	Register(998, func() Message { return &fakeMsg{} })
}
