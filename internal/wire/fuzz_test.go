package wire

import (
	"testing"

	"math"
)

// FuzzDecodeFrame hammers the frame decoder with arbitrary bytes: it
// must never panic or allocate absurdly, only return errors. Run with
// `go test -fuzz=FuzzDecodeFrame ./internal/wire` for a real campaign;
// the seed corpus runs in normal `go test`.
func FuzzDecodeFrame(f *testing.F) {
	// Seeds: valid frames of each registered kind plus hostile shapes.
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	e := NewEncoder(0)
	e.Uvarint(1) // KindTwist, if registered by importers; unknown here is fine
	e.Float64(1.5)
	f.Add(e.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; errors are expected and fine.
		_, _ = DecodeFrame(data)
	})
}

// FuzzDecoderPrimitives drives the primitive readers over arbitrary
// buffers in a fixed order; the decoder must absorb anything.
func FuzzDecoderPrimitives(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 'h', 'e', 'l', 'l', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Uvarint()
		_ = d.Varint()
		_ = d.Float64()
		_ = d.Float32()
		_ = d.Bool()
		_ = d.String()
		_ = d.BytesField()
		_ = d.Float64Slice()
		_ = d.Int8Slice()
		if d.Err() == nil && d.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}

// FuzzRoundtrip checks encode→decode identity for primitive tuples.
func FuzzRoundtrip(f *testing.F) {
	f.Add(uint64(0), int64(0), 0.0, "")
	f.Add(uint64(1<<40), int64(-12345), math.Pi, "héllo")
	f.Fuzz(func(t *testing.T, u uint64, v int64, fl float64, s string) {
		e := NewEncoder(0)
		e.Uvarint(u)
		e.Varint(v)
		e.Float64(fl)
		e.String(s)
		d := NewDecoder(e.Bytes())
		gu, gv, gf, gs := d.Uvarint(), d.Varint(), d.Float64(), d.String()
		if d.Err() != nil {
			t.Fatalf("roundtrip error: %v", d.Err())
		}
		sameF := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		if gu != u || gv != v || !sameF || gs != s {
			t.Fatalf("roundtrip mismatch: %v %v %v %q", gu, gv, gf, gs)
		}
	})
}
