// Package wire implements the compact binary serialization used to ship
// middleware messages between the LGV and the remote server, standing in
// for the paper's protobuf encoding. It provides an Encoder/Decoder pair
// over varint/fixed primitives and a kind-tagged frame format with a
// message registry, so a frame received from the network can be decoded
// without knowing its type in advance.
//
// Encoded sizes match the paper's observations: a 360-beam laser scan
// encodes to ≈2.9 KB and a velocity command to ≈48 B, which is what makes
// transmission energy (Eq. 1b) small relative to motor energy.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Encoder appends primitive values to a byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with a preallocated buffer.
func NewEncoder(capHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capHint)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed (zigzag) varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Float64 appends a fixed 8-byte IEEE-754 value.
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Float32 appends a fixed 4-byte IEEE-754 value.
func (e *Encoder) Float32(v float32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(v))
}

// Bool appends a single byte 0/1.
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) BytesField(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Float64Slice appends a length-prefixed []float64.
func (e *Encoder) Float64Slice(v []float64) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Float64(x)
	}
}

// Int8Slice appends a length-prefixed []int8.
func (e *Encoder) Int8Slice(v []int8) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.buf = append(e.buf, byte(x))
	}
}

// Errors reported by the decoder.
var (
	ErrShortBuffer = errors.New("wire: buffer too short")
	ErrOverflow    = errors.New("wire: varint overflow")
	ErrTooLong     = errors.New("wire: declared length exceeds buffer")
)

// Header encoding versions. The message header is a prefix of every
// payload, so growing it shifts all following fields: old captures
// (bags) must be decoded with the version they were written under. The
// version travels out-of-band — live traffic is always current, and the
// bag container magic identifies the version of archived frames.
const (
	// HeaderV1 is the pre-tracing header: Seq, Stamp, SentAt.
	HeaderV1 = 1
	// HeaderV2 adds the causal trace context: TraceID, ParentSpan.
	HeaderV2 = 2
	// HeaderVersion is the version written by this build.
	HeaderVersion = HeaderV2
)

// Traced is implemented by messages that carry causal trace context in
// their header (see internal/spans); the middleware uses it to stitch
// transport spans onto the sender's trace without knowing the concrete
// message type.
type Traced interface {
	TraceContext() (traceID, parentSpan uint64)
}

// Decoder reads primitive values from a byte buffer. The first error
// sticks: once a read fails, all subsequent reads return zero values and
// Err reports the failure, letting callers decode whole structs and check
// the error once.
type Decoder struct {
	buf    []byte
	off    int
	err    error
	hdrVer int
	borrow bool
}

// NewDecoder returns a decoder over the buffer, expecting the current
// header version.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b, hdrVer: HeaderVersion} }

// NewDecoderVersion returns a decoder over a buffer whose message
// headers were written under an older encoding version.
func NewDecoderVersion(b []byte, hdrVer int) *Decoder {
	return &Decoder{buf: b, hdrVer: hdrVer}
}

// HeaderVersion reports the header encoding version the buffer was
// written under; header unmarshalers branch on it.
func (d *Decoder) HeaderVersion() int { return d.hdrVer }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Borrow switches the decoder to borrow mode: BytesField returns
// subslices of the input buffer instead of copies. Hot paths that decode,
// act, and drop the message before reusing the receive buffer (e.g. a
// transport read loop dispatching inline) skip the copy; anything that
// retains the decoded message must not borrow. Returns d for chaining.
func (d *Decoder) Borrow() *Decoder {
	d.borrow = true
	return d
}

// sliceLen reads a length prefix and validates it against the remaining
// bytes assuming elemSize bytes per element. The comparison divides
// Remaining rather than multiplying the untrusted count, so adversarial
// lengths near MaxInt cannot wrap the check.
func (d *Decoder) sliceLen(elemSize int) (int, bool) {
	v := d.Uvarint()
	if d.err != nil {
		return 0, false
	}
	if v > uint64(d.Remaining()/elemSize) {
		d.fail(ErrTooLong)
		return 0, false
	}
	return int(v), true
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(err error) { d.err = err }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrShortBuffer)
		} else {
			d.fail(ErrOverflow)
		}
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrShortBuffer)
		} else {
			d.fail(ErrOverflow)
		}
		return 0
	}
	d.off += n
	return v
}

// Float64 reads a fixed 8-byte value.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// Float32 reads a fixed 4-byte value.
func (d *Decoder) Float32() float32 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 4 {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	return v
}

// Bool reads a single byte 0/1.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail(ErrShortBuffer)
		return false
	}
	v := d.buf[d.off] != 0
	d.off++
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n, ok := d.sliceLen(1)
	if !ok {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// BytesField reads a length-prefixed byte slice. The bytes are copied
// unless the decoder is in Borrow mode, in which case a capacity-capped
// subslice of the input buffer is returned.
func (d *Decoder) BytesField() []byte {
	n, ok := d.sliceLen(1)
	if !ok {
		return nil
	}
	if d.borrow {
		b := d.buf[d.off : d.off+n : d.off+n]
		d.off += n
		return b
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

// Float64Slice reads a length-prefixed []float64.
func (d *Decoder) Float64Slice() []float64 {
	return d.Float64SliceInto(nil)
}

// Float64SliceInto reads a length-prefixed []float64 into dst's backing
// array when it has the capacity, allocating only when it doesn't. Pass
// buf[:0] to reuse a scratch slice across decodes.
func (d *Decoder) Float64SliceInto(dst []float64) []float64 {
	n, ok := d.sliceLen(8)
	if !ok {
		return nil
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = d.Float64()
	}
	return dst
}

// Int8Slice reads a length-prefixed []int8.
func (d *Decoder) Int8Slice() []int8 {
	return d.Int8SliceInto(nil)
}

// Int8SliceInto reads a length-prefixed []int8 into dst's backing array
// when it has the capacity, allocating only when it doesn't.
func (d *Decoder) Int8SliceInto(dst []int8) []int8 {
	n, ok := d.sliceLen(1)
	if !ok {
		return nil
	}
	if cap(dst) < n {
		dst = make([]int8, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = int8(d.buf[d.off+i])
	}
	d.off += n
	return dst
}

// ---------------------------------------------------------------------------
// Kind-tagged frames.

// Message is a value that can travel over the wire. Kind identifies the
// concrete type in the frame header; kinds must be registered.
type Message interface {
	Kind() uint16
	MarshalWire(e *Encoder)
	UnmarshalWire(d *Decoder) error
}

var registry = map[uint16]func() Message{}

// Register associates a message kind with a factory for decoding. It
// panics on duplicate registration (a programming error caught at init).
func Register(kind uint16, factory func() Message) {
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("wire: duplicate message kind %d", kind))
	}
	registry[kind] = factory
}

// encPool recycles Encoders across frame encodes. Scan frames grow the
// buffer to ~3 KB once; after warm-up the steady-state message plane
// encodes without allocating.
var encPool = sync.Pool{New: func() any { return NewEncoder(64) }}

// GetEncoder borrows a reset Encoder from the process-wide pool. Return
// it with PutEncoder once the encoded bytes have been consumed; the
// buffer returned by Bytes is invalid after that.
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns a borrowed Encoder to the pool.
func PutEncoder(e *Encoder) { encPool.Put(e) }

// EncodeFrameTo serializes a message with its kind header into e,
// appending to its current contents.
func EncodeFrameTo(e *Encoder, m Message) {
	e.Uvarint(uint64(m.Kind()))
	m.MarshalWire(e)
}

// EncodeFrame serializes a message with its kind header into a fresh
// buffer. Hot paths that can scope the buffer's lifetime should prefer
// GetEncoder + EncodeFrameTo + PutEncoder to reuse buffers instead.
func EncodeFrame(m Message) []byte {
	e := NewEncoder(64)
	EncodeFrameTo(e, m)
	return e.Bytes()
}

// EncodedSize returns the frame size of a message without retaining any
// buffer, using a pooled encoder. Callers that only need the size (queue
// accounting, radio models) avoid EncodeFrame's per-call allocation.
func EncodedSize(m Message) int {
	e := GetEncoder()
	EncodeFrameTo(e, m)
	n := e.Len()
	PutEncoder(e)
	return n
}

// DecodeFrame parses a frame produced by EncodeFrame, dispatching on the
// registered kind.
func DecodeFrame(b []byte) (Message, error) {
	return DecodeFrameVersion(b, HeaderVersion)
}

// DecodeFrameVersion parses a frame written under an older header
// encoding version (archived bags); live traffic uses DecodeFrame.
func DecodeFrameVersion(b []byte, hdrVer int) (Message, error) {
	d := NewDecoderVersion(b, hdrVer)
	kind := uint16(d.Uvarint())
	if d.Err() != nil {
		return nil, d.Err()
	}
	factory, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	m := factory()
	if err := m.UnmarshalWire(d); err != nil {
		return nil, err
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return m, nil
}
