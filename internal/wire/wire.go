// Package wire implements the compact binary serialization used to ship
// middleware messages between the LGV and the remote server, standing in
// for the paper's protobuf encoding. It provides an Encoder/Decoder pair
// over varint/fixed primitives and a kind-tagged frame format with a
// message registry, so a frame received from the network can be decoded
// without knowing its type in advance.
//
// Encoded sizes match the paper's observations: a 360-beam laser scan
// encodes to ≈2.9 KB and a velocity command to ≈48 B, which is what makes
// transmission energy (Eq. 1b) small relative to motor energy.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoder appends primitive values to a byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with a preallocated buffer.
func NewEncoder(capHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capHint)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed (zigzag) varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Float64 appends a fixed 8-byte IEEE-754 value.
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Float32 appends a fixed 4-byte IEEE-754 value.
func (e *Encoder) Float32(v float32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(v))
}

// Bool appends a single byte 0/1.
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) BytesField(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Float64Slice appends a length-prefixed []float64.
func (e *Encoder) Float64Slice(v []float64) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Float64(x)
	}
}

// Int8Slice appends a length-prefixed []int8.
func (e *Encoder) Int8Slice(v []int8) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.buf = append(e.buf, byte(x))
	}
}

// Errors reported by the decoder.
var (
	ErrShortBuffer = errors.New("wire: buffer too short")
	ErrOverflow    = errors.New("wire: varint overflow")
	ErrTooLong     = errors.New("wire: declared length exceeds buffer")
)

// Header encoding versions. The message header is a prefix of every
// payload, so growing it shifts all following fields: old captures
// (bags) must be decoded with the version they were written under. The
// version travels out-of-band — live traffic is always current, and the
// bag container magic identifies the version of archived frames.
const (
	// HeaderV1 is the pre-tracing header: Seq, Stamp, SentAt.
	HeaderV1 = 1
	// HeaderV2 adds the causal trace context: TraceID, ParentSpan.
	HeaderV2 = 2
	// HeaderVersion is the version written by this build.
	HeaderVersion = HeaderV2
)

// Traced is implemented by messages that carry causal trace context in
// their header (see internal/spans); the middleware uses it to stitch
// transport spans onto the sender's trace without knowing the concrete
// message type.
type Traced interface {
	TraceContext() (traceID, parentSpan uint64)
}

// Decoder reads primitive values from a byte buffer. The first error
// sticks: once a read fails, all subsequent reads return zero values and
// Err reports the failure, letting callers decode whole structs and check
// the error once.
type Decoder struct {
	buf    []byte
	off    int
	err    error
	hdrVer int
}

// NewDecoder returns a decoder over the buffer, expecting the current
// header version.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b, hdrVer: HeaderVersion} }

// NewDecoderVersion returns a decoder over a buffer whose message
// headers were written under an older encoding version.
func NewDecoderVersion(b []byte, hdrVer int) *Decoder {
	return &Decoder{buf: b, hdrVer: hdrVer}
}

// HeaderVersion reports the header encoding version the buffer was
// written under; header unmarshalers branch on it.
func (d *Decoder) HeaderVersion() int { return d.hdrVer }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(err error) { d.err = err }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrShortBuffer)
		} else {
			d.fail(ErrOverflow)
		}
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrShortBuffer)
		} else {
			d.fail(ErrOverflow)
		}
		return 0
	}
	d.off += n
	return v
}

// Float64 reads a fixed 8-byte value.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// Float32 reads a fixed 4-byte value.
func (d *Decoder) Float32() float32 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 4 {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	return v
}

// Bool reads a single byte 0/1.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail(ErrShortBuffer)
		return false
	}
	v := d.buf[d.off] != 0
	d.off++
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.Uvarint())
	if d.err != nil {
		return ""
	}
	if n < 0 || n > d.Remaining() {
		d.fail(ErrTooLong)
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// BytesField reads a length-prefixed byte slice (copied).
func (d *Decoder) BytesField() []byte {
	n := int(d.Uvarint())
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.fail(ErrTooLong)
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

// Float64Slice reads a length-prefixed []float64.
func (d *Decoder) Float64Slice() []float64 {
	n := int(d.Uvarint())
	if d.err != nil {
		return nil
	}
	if n < 0 || n*8 > d.Remaining() {
		d.fail(ErrTooLong)
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.Float64()
	}
	return v
}

// Int8Slice reads a length-prefixed []int8.
func (d *Decoder) Int8Slice() []int8 {
	n := int(d.Uvarint())
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.fail(ErrTooLong)
		return nil
	}
	v := make([]int8, n)
	for i := range v {
		v[i] = int8(d.buf[d.off+i])
	}
	d.off += n
	return v
}

// ---------------------------------------------------------------------------
// Kind-tagged frames.

// Message is a value that can travel over the wire. Kind identifies the
// concrete type in the frame header; kinds must be registered.
type Message interface {
	Kind() uint16
	MarshalWire(e *Encoder)
	UnmarshalWire(d *Decoder) error
}

var registry = map[uint16]func() Message{}

// Register associates a message kind with a factory for decoding. It
// panics on duplicate registration (a programming error caught at init).
func Register(kind uint16, factory func() Message) {
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("wire: duplicate message kind %d", kind))
	}
	registry[kind] = factory
}

// EncodeFrame serializes a message with its kind header.
func EncodeFrame(m Message) []byte {
	e := NewEncoder(64)
	e.Uvarint(uint64(m.Kind()))
	m.MarshalWire(e)
	return e.Bytes()
}

// DecodeFrame parses a frame produced by EncodeFrame, dispatching on the
// registered kind.
func DecodeFrame(b []byte) (Message, error) {
	return DecodeFrameVersion(b, HeaderVersion)
}

// DecodeFrameVersion parses a frame written under an older header
// encoding version (archived bags); live traffic uses DecodeFrame.
func DecodeFrameVersion(b []byte, hdrVer int) (Message, error) {
	d := NewDecoderVersion(b, hdrVer)
	kind := uint16(d.Uvarint())
	if d.Err() != nil {
		return nil, d.Err()
	}
	factory, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	m := factory()
	if err := m.UnmarshalWire(d); err != nil {
		return nil, err
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return m, nil
}
