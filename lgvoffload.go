// Package lgvoffload is a library-scale reproduction of "Towards
// Practical Cloud Offloading for Low-cost Ground Vehicle Workloads"
// (IPDPS 2021): an end-to-end cloud-robotic offloading framework with a
// fully simulated substrate — a 2-D world and differential-drive vehicle,
// laser/odometry sensing, a ROS-like middleware, a wireless network with
// UDP best-effort semantics, calibrated compute-platform models, and the
// complete LGV workload pipeline (AMCL, GMapping SLAM, layered costmaps,
// A*/Dijkstra planning, frontier exploration, DWA path tracking and a
// velocity multiplexer).
//
// The public surface re-exports the mission engine and the paper's three
// optimizations: fine-grained migration (Algorithm 1), parallel cloud
// acceleration (Figs. 5/6), and real-time network-quality adjustment
// (Algorithm 2). A typical use:
//
//	cfg := lgvoffload.MissionConfig{
//		Workload:   lgvoffload.NavigationWithMap,
//		Map:        lgvoffload.LabMap(),
//		Start:      lgvoffload.Pose(0.6, 0.6, 0),
//		Goal:       lgvoffload.Point(11, 5),
//		Deployment: lgvoffload.DeployAdaptive(lgvoffload.HostEdge, 8, lgvoffload.GoalMCT),
//		Seed:       1,
//	}
//	res, err := lgvoffload.Run(cfg)
//
// Every experiment of the paper's evaluation is regenerable through
// Experiments (or the cmd/reproduce binary).
package lgvoffload

import (
	"io"
	"net/http"

	"lgvoffload/internal/bench"
	"lgvoffload/internal/core"
	"lgvoffload/internal/energy"
	"lgvoffload/internal/faults"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/obs"
	"lgvoffload/internal/spans"
	"lgvoffload/internal/store"
	"lgvoffload/internal/world"
)

// Core mission types, re-exported from the engine.
type (
	// MissionConfig fully describes one mission run.
	MissionConfig = core.MissionConfig
	// Result summarizes a completed mission.
	Result = core.Result
	// TracePoint is one row of a recorded mission time series.
	TracePoint = core.TracePoint
	// Deployment describes an offloading configuration.
	Deployment = core.Deployment
	// Workload selects the pipeline variant.
	Workload = core.Workload
	// Goal is Algorithm 1's optimization target.
	Goal = core.Goal
	// Map is a 2-D occupancy grid world.
	Map = grid.Map
	// EnergyComponent identifies one energy-consuming subsystem.
	EnergyComponent = energy.Component
	// Telemetry is the mission telemetry sink (see internal/obs): set
	// MissionConfig.Telemetry to one to collect the event timeline and
	// metrics; leave it nil (the default) for zero overhead.
	Telemetry = obs.Telemetry
	// TelemetryEvent is one structured timeline event.
	TelemetryEvent = obs.Event
	// MetricPoint is one exported metric sample.
	MetricPoint = obs.MetricPoint
	// AdaptDecision is one entry of a mission's adaptation decision log.
	AdaptDecision = core.AdaptDecision
	// FaultConfig is a deterministic fault-injection schedule; assign
	// one to MissionConfig.Faults to replay scripted disturbances.
	FaultConfig = faults.Config
	// FaultWindow is one scripted disturbance window.
	FaultWindow = faults.Window
	// Tracer is the causal tracing collector (see internal/spans): set
	// MissionConfig.Tracer to one to record every control tick as a span
	// tree; leave it nil (the default) for zero overhead.
	Tracer = spans.Tracer
	// Span is one completed trace interval.
	Span = spans.Span
	// TickPath is the critical-path decomposition of one traced tick.
	TickPath = spans.TickPath
	// CritPathSummary aggregates tick decompositions into p50/p95 form.
	CritPathSummary = spans.Summary
	// Store is the embedded mission store (see internal/store): an
	// append-only, crash-safe record log of missions with a query layer.
	Store = store.Store
	// MissionRecorder persists one running mission into a Store; assign
	// one (from Store.Begin) to MissionConfig.Store. Nil — the default —
	// records nothing at zero cost.
	MissionRecorder = store.Recorder
	// MissionStart is the metadata record opening a stored mission.
	MissionStart = store.MissionStart
	// MissionSummary is the closing summary record of a stored mission
	// (also the store's in-file index entry).
	MissionSummary = store.MissionEnd
	// MissionInfo is one mission listing row from Store.List.
	MissionInfo = store.MissionInfo
	// StoreFilter selects missions for Store.List and Store.FleetStats.
	StoreFilter = store.Filter
	// MissionData is one fully decoded stored mission (metadata, summary
	// and every tick/decision/fault/span record), from Store.ReadMission.
	MissionData = store.MissionData
	// StoreStats reports a store file's size, record and mission counts.
	StoreStats = store.Stats
	// FleetStats aggregates stored missions (success rates, pooled VDP
	// quantiles, decision flip-rate trends).
	FleetStats = store.Fleet
	// LiveHub broadcasts live mission events to SSE subscribers; attach
	// one with Telemetry.Tee and serve it via InspectorConfig.Live.
	LiveHub = obs.LiveHub
	// InspectorConfig configures NewInspectorWith (the dashboard-capable
	// HTTP inspector).
	InspectorConfig = obs.InspectorConfig
	// FlightRecorder is the always-on mission black box: assign one to
	// MissionConfig.FlightRec to capture per-tick frames and dump JSONL
	// bundles on watchdog stops, failovers, SLO breaches and panics.
	FlightRecorder = obs.FlightRecorder
	// FlightConfig sizes a FlightRecorder (ring capacities, dump window,
	// output directory, rate limits).
	FlightConfig = obs.FlightConfig
	// FlightFrame is one per-tick flight-recorder snapshot.
	FlightFrame = obs.FlightFrame
	// FlightBundle is one frozen flight-recorder dump.
	FlightBundle = obs.FlightBundle
	// SLOEngine judges missions live against declarative service-level
	// rules; assign one to MissionConfig.SLO and InspectorConfig.SLO.
	SLOEngine = obs.SLOEngine
	// SLORule is one parsed service-level rule.
	SLORule = obs.SLORule
	// SLOBreach records one rule transition into the breached state.
	SLOBreach = obs.Breach
	// SLOHealth is the /health + /ready projection of an SLOEngine.
	SLOHealth = obs.HealthStatus
)

// EnergyComponents lists the Eq. 1a components in presentation order.
var EnergyComponents = energy.Components

// Workloads.
const (
	NavigationWithMap = core.NavigationWithMap
	ExplorationNoMap  = core.ExplorationNoMap
	CoverageWithMap   = core.CoverageWithMap
)

// Algorithm 1 goals.
const (
	GoalEC  = core.GoalEC
	GoalMCT = core.GoalMCT
)

// Hosts.
const (
	HostLGV   = core.HostLGV
	HostEdge  = core.HostEdge
	HostCloud = core.HostCloud
)

// Run executes a mission to completion.
func Run(cfg MissionConfig) (*Result, error) { return core.Run(cfg) }

// NewTelemetry builds an enabled telemetry sink whose timeline holds at
// most eventCap events (<= 0 means the default capacity).
func NewTelemetry(eventCap int) *Telemetry { return obs.NewTelemetry(eventCap) }

// WritePostMortem renders a mission's human-readable post-mortem report
// (per-node latency histograms, host occupancy, network summary and the
// adaptation decision log) to w. Nil-safe on t.
func WritePostMortem(w io.Writer, t *Telemetry, missionTime float64) error {
	return obs.WritePostMortem(w, t, missionTime)
}

// NewTracer builds a causal-trace collector holding at most capacity
// spans (<= 0 means the default, about 20 minutes of 5 Hz mission).
func NewTracer(capacity int) *Tracer { return spans.NewTracer(capacity) }

// AnalyzeTicks decomposes recorded spans into per-tick critical paths.
func AnalyzeTicks(sp []Span) []TickPath { return spans.AnalyzeTicks(sp) }

// SummarizeTicks aggregates tick decompositions into p50/p95 quantiles.
func SummarizeTicks(paths []TickPath) CritPathSummary { return spans.Summarize(paths) }

// WriteCritPathTable prints the per-tick VDP decomposition (sampling
// down to maxRows rows) followed by a quantile summary footer.
func WriteCritPathTable(w io.Writer, paths []TickPath, maxRows int) {
	spans.WriteTable(w, paths, maxRows)
}

// ValidateTrace checks structural invariants over a recorded span set.
func ValidateTrace(sp []Span) error { return spans.Validate(sp) }

// ValidateChromeTrace checks an exported Chrome trace-event JSON
// document and returns its complete-event count.
func ValidateChromeTrace(data []byte) (int, error) { return spans.ValidateChrome(data) }

// NewInspector returns the live HTTP inspection endpoint: metrics
// snapshot, recent timeline, Chrome trace, expvar and pprof. Either
// argument may be nil.
func NewInspector(t *Telemetry, tr *Tracer) http.Handler {
	if tr == nil {
		return obs.NewInspector(t, nil)
	}
	return obs.NewInspector(t, tr)
}

// NewInspectorWith returns the full HTTP inspection endpoint including
// the persistent-mission dashboard (/missions, /missions/{id}, /fleet,
// /dash) and the live SSE stream (/live). Every config field may be
// nil; note that a *Tracer must be assigned via a typed non-nil value
// (use NewInspector for the tracer-only case).
func NewInspectorWith(cfg InspectorConfig) http.Handler { return obs.NewInspectorWith(cfg) }

// OpenStore opens (creating if needed) an embedded mission store. A
// torn or corrupt tail left by a crash is truncated on open, never
// fatal. Typical recording flow:
//
//	st, _ := lgvoffload.OpenStore("missions.lgvstore")
//	rec, _ := st.Begin(lgvoffload.MissionStart{Seed: cfg.Seed})
//	cfg.Store = rec
//	res, _ := lgvoffload.Run(cfg)
//	rec.Finish(lgvoffload.StoreSummary(res))
func OpenStore(path string) (*Store, error) { return store.Open(path) }

// StoreSummary projects a mission Result onto the store's closing
// summary record for MissionRecorder.Finish.
func StoreSummary(res *Result) MissionSummary { return core.StoreSummary(res) }

// NewLiveHub builds an SSE broadcast hub whose replay ring holds
// replayCap recent frames (<= 0 means the default).
func NewLiveHub(replayCap int) *LiveHub { return obs.NewLiveHub(replayCap) }

// NewFlightRecorder preallocates a mission flight recorder; zero-value
// config fields take the defaults (4096 frames, 1024 events, 30 s dump
// window, 16 dumps at least 5 virtual seconds apart).
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder { return obs.NewFlightRecorder(cfg) }

// NewSLOEngine builds a live SLO judge over the given rules.
func NewSLOEngine(rules []SLORule) *SLOEngine { return obs.NewSLOEngine(rules) }

// ParseSLORules parses a comma-separated rule spec such as
// "vdp_p99<=0.5@30s,energy_rate~3@20s" ("default" for DefaultSLORules).
func ParseSLORules(spec string) ([]SLORule, error) { return obs.ParseSLORules(spec) }

// DefaultSLORules is the stock rule set behind `-slo default`.
func DefaultSLORules() []SLORule { return obs.DefaultSLORules() }

// VerifyFlightBundle structurally validates a flight-recorder bundle
// (version tag, header/body agreement, frame ordering and windowing).
func VerifyFlightBundle(data []byte) (FlightBundle, error) { return obs.VerifyFlightBundle(data) }

// ValidatePrometheusText checks that data parses as Prometheus text
// exposition format and returns the sample count.
func ValidatePrometheusText(data []byte) (int, error) { return obs.ValidatePrometheusText(data) }

// Deployment constructors.
var (
	// DeployLocal runs everything on the vehicle (the baseline).
	DeployLocal = core.DeployLocal
	// DeployEdge pins the ECNs to the edge gateway with n threads.
	DeployEdge = core.DeployEdge
	// DeployCloud pins the ECNs to the cloud server with n threads.
	DeployCloud = core.DeployCloud
	// DeployAdaptive applies Algorithms 1 and 2 at runtime.
	DeployAdaptive = core.DeployAdaptive
)

// World builders.
var (
	// LabMap is the 12×6 m lab used by the paper-scale experiments.
	LabMap = world.LabMap
	// ObstacleCourseMap is the Fig. 14 slalom/straight/turn course.
	ObstacleCourseMap = world.ObstacleCourseMap
	// EmptyRoomMap builds a walled empty room.
	EmptyRoomMap = world.EmptyRoomMap
)

// DeadZoneLink builds a short-range WAP link (good to 3 m, faded out by
// 8 m) for missions that deliberately drive out of coverage; assign its
// address to MissionConfig.LinkCfg.
func DeadZoneLink(wap geom.Vec2) netsim.LinkConfig {
	link := netsim.DefaultEdgeLink(wap)
	link.GoodRange = 3
	link.FadeRange = 8
	return link
}

// ParseFaultSpec parses a compact fault-schedule spec such as
// "wap:10-20;server:30-45;burst:50-52:0.9" into a FaultConfig (kinds:
// wap, server, burst, corrupt, partup, partdown; times in seconds,
// optional third field is a probability).
func ParseFaultSpec(spec string) (FaultConfig, error) { return faults.ParseSpec(spec) }

// LinkTrace is a recorded wireless-link condition trace (bandwidth,
// latency, loss over time) replayed in place of the analytic distance
// model; assign one to MissionConfig.LinkTrace.
type LinkTrace = netsim.LinkTrace

// Trace replay helpers.
var (
	// BuiltinTraceNames lists the committed link traces ("office-roam",
	// "garage-deepfade", "cafe-congestion", ...).
	BuiltinTraceNames = netsim.BuiltinTraceNames
	// BuiltinTrace returns a committed link trace by name.
	BuiltinTrace = netsim.BuiltinTrace
	// ParseLinkTrace reads a versioned .lgvtrace file.
	ParseLinkTrace = netsim.ParseLinkTrace
)

// Pose builds a robot pose (x, y in meters, theta in radians).
func Pose(x, y, theta float64) geom.Pose { return geom.P(x, y, theta) }

// Vec2 is a world point (meters).
type Vec2 = geom.Vec2

// Point builds a world point.
func Point(x, y float64) geom.Vec2 { return geom.V(x, y) }

// ParseMap parses an ASCII map ('#' occupied, '.' free, '?' unknown; the
// first text row is the top of the map).
func ParseMap(text string, resolution float64) (*Map, error) {
	return grid.ParseText(text, resolution, geom.V(0, 0))
}

// Experiment is one regenerable table or figure from the paper.
type Experiment = bench.Experiment

// Experiments returns every paper experiment in presentation order.
func Experiments() []Experiment { return bench.All() }

// RunExperiment regenerates one experiment by ID ("table1", "fig9", …),
// writing its report to w. Quick mode shrinks workloads for tests.
func RunExperiment(id string, w io.Writer, quick bool) error {
	e, ok := bench.ByID(id)
	if !ok {
		return errUnknownExperiment(id)
	}
	return e.Run(w, quick)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "lgvoffload: unknown experiment " + string(e)
}
