// Command lgvstore inspects an embedded mission store file produced by
// lgvsim -store, reproduce -store or any program using
// lgvoffload.OpenStore.
//
// Usage:
//
//	lgvstore ls [filter flags] <store>           list missions
//	lgvstore show [-ticks] <store> <mission-id>  one mission in detail
//	lgvstore stats [filter flags] <store>        fleet aggregates + file stats
//	lgvstore export [-o out.json] <store> <id>   full mission record dump (JSON)
//	lgvstore compact [filter flags] <store> <dst>  rewrite keeping matches
//
// Filter flags (ls, stats, compact): -outcome success|failure|unfinished,
// -seed N, -fault <substring>, -workload <name>, -limit N.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"lgvoffload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "ls":
		err = cmdLs(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "lgvstore: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lgvstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  lgvstore ls [filter flags] <store>
  lgvstore show [-ticks] <store> <mission-id>
  lgvstore stats [filter flags] <store>
  lgvstore export [-o file] <store> <mission-id>
  lgvstore compact [filter flags] <store> <dst>

filter flags: -outcome success|failure|unfinished  -seed N
              -fault <substring>  -workload <name>  -limit N
`)
}

// filterFlags registers the shared mission-filter flags on fs and
// returns a closure assembling the StoreFilter after parsing.
func filterFlags(fs *flag.FlagSet) func() lgvoffload.StoreFilter {
	outcome := fs.String("outcome", "", "filter by outcome: success | failure | unfinished")
	seed := fs.Int64("seed", 0, "filter by mission seed")
	fault := fs.String("fault", "", "filter by fault-spec substring")
	workload := fs.String("workload", "", "filter by workload name")
	limit := fs.Int("limit", 0, "cap result count (most recent win)")
	return func() lgvoffload.StoreFilter {
		f := lgvoffload.StoreFilter{
			Outcome: *outcome, FaultSpec: *fault, Workload: *workload, Limit: *limit,
		}
		fs.Visit(func(fl *flag.Flag) {
			if fl.Name == "seed" {
				f.Seed, f.HasSeed = *seed, true
			}
		})
		return f
	}
}

func openArg(fs *flag.FlagSet, args []string, want int) (*lgvoffload.Store, []string, error) {
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	rest := fs.Args()
	if len(rest) != want {
		return nil, nil, fmt.Errorf("expected %d positional argument(s), got %d", want, len(rest))
	}
	if _, err := os.Stat(rest[0]); err != nil {
		return nil, nil, err // don't silently create a store on a typo'd path
	}
	st, err := lgvoffload.OpenStore(rest[0])
	if err != nil {
		return nil, nil, err
	}
	return st, rest, nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	filter := filterFlags(fs)
	st, _, err := openArg(fs, args, 1)
	if err != nil {
		return err
	}
	defer st.Close()
	missions := st.List(filter())
	if len(missions) == 0 {
		fmt.Println("no missions match")
		return nil
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tWHEN\tWORKLOAD\tDEPLOY\tSEED\tFAULTS\tOUTCOME\tTIME\tENERGY\tTICKS")
	for _, m := range missions {
		when := "-"
		if m.Start.Unix != 0 {
			when = time.Unix(m.Start.Unix, 0).UTC().Format("2006-01-02 15:04")
		}
		tm, energy, ticks := "-", "-", "-"
		if m.End != nil {
			tm = fmt.Sprintf("%.1fs", m.End.TotalTime)
			energy = fmt.Sprintf("%.0fJ", m.End.TotalEnergy)
			ticks = fmt.Sprintf("%d", m.End.Ticks)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			m.Start.ID, when, m.Start.Workload, m.Start.Deploy, m.Start.Seed,
			orDash(m.Start.FaultSpec), m.Outcome(), tm, energy, ticks)
	}
	return tw.Flush()
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	ticks := fs.Bool("ticks", false, "also print the per-tick telemetry series")
	st, rest, err := openArg(fs, args, 2)
	if err != nil {
		return err
	}
	defer st.Close()
	md, err := st.ReadMission(rest[1])
	if err != nil {
		return err
	}
	s := md.Start
	fmt.Printf("mission %s  (%s on %s, seed %d", s.ID, s.Workload, s.Deploy, s.Seed)
	if s.FaultSpec != "" {
		fmt.Printf(", faults %q", s.FaultSpec)
	}
	fmt.Println(")")
	if s.Unix != 0 {
		fmt.Printf("  started  %s\n", time.Unix(s.Unix, 0).UTC().Format(time.RFC3339))
	}
	if md.End == nil {
		fmt.Printf("  outcome  unfinished (%d ticks, %d decisions recorded)\n",
			len(md.Ticks), len(md.Decisions))
		return nil
	}
	e := md.End
	fmt.Printf("  outcome  success=%v (%s)\n", e.Success, e.Reason)
	fmt.Printf("  time     total %.1f s = moving %.1f s + standby %.1f s\n",
		e.TotalTime, e.MovingTime, e.StandbyTime)
	fmt.Printf("  motion   %.2f m, avg velocity cap %.3f m/s\n", e.Distance, e.AvgMaxVel)
	fmt.Printf("  energy   %.1f J total\n", e.TotalEnergy)
	fmt.Printf("  vdp      mean %.1f ms  p50 %.1f  p95 %.1f  p99 %.1f  (%d ticks",
		e.VDPMean*1e3, e.VDPP50*1e3, e.VDPP95*1e3, e.VDPP99*1e3, e.Ticks)
	if e.Dropped > 0 {
		fmt.Printf(", %d records dropped", e.Dropped)
	}
	fmt.Println(")")
	fmt.Printf("  network  %d msgs, %d dropped, %d switches, %d failovers, %d watchdog stops\n",
		e.MsgsSent, e.MsgsDropped, e.Switches, e.Failovers, e.WatchdogStops)
	if len(md.Faults) > 0 {
		fmt.Println("  faults")
		for _, f := range md.Faults {
			fmt.Printf("    %-10s %.1f – %.1f s\n", f.Kind, f.T0, f.T1)
		}
	}
	if len(md.Decisions) > 0 {
		fmt.Println("  decisions")
		for _, d := range md.Decisions {
			fmt.Printf("    %7.1fs  %s -> %s  (%s, bw %.1f Mbps)\n",
				d.T, d.From, d.To, d.Reason, d.Bandwidth)
		}
	}
	if *ticks {
		fmt.Println("  ticks (t, vdp_ms, energy_J, bw, vmax, v, remote)")
		for _, tk := range md.Ticks {
			fmt.Printf("    %7.1f  %7.2f  %8.1f  %5.1f  %.3f  %.3f  %v\n",
				tk.T, tk.VDP*1e3, tk.EnergyJ, tk.Bandwidth, tk.MaxVel, tk.RealVel, tk.RemoteOn)
		}
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	filter := filterFlags(fs)
	asJSON := fs.Bool("json", false, "emit the aggregates as JSON")
	st, _, err := openArg(fs, args, 1)
	if err != nil {
		return err
	}
	defer st.Close()
	fleet, err := st.FleetStats(filter())
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			File  lgvoffload.StoreStats `json:"file"`
			Fleet lgvoffload.FleetStats `json:"fleet"`
		}{st.Stats(), fleet})
	}
	fst := st.Stats()
	fmt.Printf("file     %s: %d bytes, %d records", fst.Path, fst.Bytes, fst.Records)
	if fst.TruncatedBytes > 0 {
		fmt.Printf(" (%d torn tail bytes truncated on open)", fst.TruncatedBytes)
	}
	fmt.Println()
	fmt.Printf("fleet    %d missions: %d success, %d failure, %d unfinished (%.0f%% success)\n",
		fleet.Missions, fleet.Successes, fleet.Failures, fleet.Unfinished, fleet.SuccessRate*100)
	if fleet.Finished == 0 {
		return nil
	}
	fmt.Printf("mission  mean %.1f s, mean energy %.1f J (total %.1f J)\n",
		fleet.MeanMission, fleet.MeanEnergy, fleet.TotalEnergy)
	fmt.Printf("vdp      mean %.1f ms  p50 %.1f  p95 %.1f  p99 %.1f  (pooled over %d ticks)\n",
		fleet.VDPMean*1e3, fleet.VDPP50*1e3, fleet.VDPP95*1e3, fleet.VDPP99*1e3, fleet.Ticks)
	fmt.Printf("adapt    %d decisions, %.2f flips/mission-minute mean\n",
		fleet.Decisions, fleet.MeanFlipRate)
	if len(fleet.FlipRates) > 1 {
		fmt.Print("trend    flips/min by mission:")
		for _, p := range fleet.FlipRates {
			fmt.Printf("  %s=%.2f", p.ID, p.Rate)
		}
		fmt.Println()
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	out := fs.String("o", "", "write to this file instead of stdout")
	st, rest, err := openArg(fs, args, 2)
	if err != nil {
		return err
	}
	defer st.Close()
	md, err := st.ReadMission(rest[1])
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(md)
}

func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	filter := filterFlags(fs)
	st, rest, err := openArg(fs, args, 2)
	if err != nil {
		return err
	}
	defer st.Close()
	if _, err := os.Stat(rest[1]); err == nil {
		return fmt.Errorf("destination %s already exists", rest[1])
	}
	kept, err := st.Compact(rest[1], filter())
	if err != nil {
		return err
	}
	fmt.Printf("kept %d of %d missions in %s\n", kept, st.Stats().Missions, rest[1])
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
