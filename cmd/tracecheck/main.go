// Command tracecheck validates an exported Chrome trace-event JSON file
// (as written by lgvsim -trace or reproduce): the document must parse,
// every event needs a non-negative timestamp, complete events must be
// time-ordered, and every referenced parent span must be present. Exits
// nonzero on the first violation, so it slots into CI (`make trace-demo`).
package main

import (
	"flag"
	"fmt"
	"os"

	"lgvoffload"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracecheck trace.json [...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ok := true
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			ok = false
			continue
		}
		n, err := lgvoffload.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			ok = false
			continue
		}
		fmt.Printf("%s: ok (%d complete events)\n", path, n)
	}
	if !ok {
		os.Exit(1)
	}
}
