// Command scenhunt drives an N-seed scenario-matrix campaign: it
// generates missions across worlds × faults × goals × fleets × threads
// × link profiles (internal/simtest), runs each headlessly, checks the
// paper-derived invariant library, and shrinks any violation to a
// minimal JSON repro. Exit status: 0 all green, 1 violations found,
// 2 usage or infrastructure error. `make hunt` runs it with 200 seeds;
// the nightly CI job uploads any repros it writes.
//
//	scenhunt -seeds 200 -repros internal/simtest/testdata/repros
//	scenhunt -seeds 1 -start 31337 -v          # re-run one campaign seed
//	scenhunt -seeds 50 -matrix-every 10        # heavy determinism sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"lgvoffload/internal/simtest"
)

func main() {
	seeds := flag.Int("seeds", 200, "number of campaign seeds to hunt")
	start := flag.Int64("start", 0, "first campaign seed")
	matrixEvery := flag.Int("matrix-every", 25, "run the thread×partition determinism matrix every Nth seed (0 = never)")
	schedEvery := flag.Int("sched-every", 0, "run the sched-fair control-plane invariant every Nth seed (0 = never)")
	reproDir := flag.String("repros", "", "directory for shrunk violation repros (empty = don't write)")
	shrinkBudget := flag.Int("shrink-budget", 48, "max mission runs spent minimizing each violation")
	workers := flag.Int("workers", runtime.NumCPU(), "campaign shards evaluated concurrently")
	jsonOut := flag.String("json", "", "write the aggregated campaign stats to this file")
	verbose := flag.Bool("v", false, "log every scenario")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	stats := hunt(*seeds, *start, *matrixEvery, *schedEvery, *reproDir, *shrinkBudget, *workers, *verbose)

	fmt.Printf("scenhunt: %d seeds, %d mission runs\n", stats.Seeds, stats.Runs)
	names := make([]string, 0, len(stats.Checked))
	for name := range stats.Checked {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-24s checked %5d  skipped %5d\n", name, stats.Checked[name], stats.Skipped[name])
	}
	for name, n := range stats.Skipped {
		if stats.Checked[name] == 0 {
			fmt.Printf("  %-24s checked %5d  skipped %5d\n", name, 0, n)
		}
	}
	for _, e := range stats.Errors {
		fmt.Printf("  setup error: %s\n", e)
	}
	if *jsonOut != "" {
		b, err := json.MarshalIndent(stats, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenhunt: writing %s: %v\n", *jsonOut, err)
			os.Exit(2)
		}
	}
	if len(stats.Violations) > 0 {
		for _, r := range stats.Violations {
			fmt.Printf("VIOLATION %s (campaign seed %d): %s\n", r.Invariant, r.CampaignSeed, r.Error)
			fmt.Printf("  minimized: %s\n", r.Scenario.Label())
		}
		fmt.Printf("scenhunt: %d violation(s)\n", len(stats.Violations))
		os.Exit(1)
	}
	fmt.Println("scenhunt: all invariants green")
}

// hunt shards the seed range across workers; each shard is its own
// deterministic Campaign, and the aggregate is order-independent.
func hunt(seeds int, start int64, matrixEvery, schedEvery int, reproDir string, shrinkBudget, workers int, verbose bool) *simtest.CampaignStats {
	if workers < 1 {
		workers = 1
	}
	if workers > seeds {
		workers = seeds
	}
	total := &simtest.CampaignStats{Checked: map[string]int{}, Skipped: map[string]int{}}
	if workers <= 1 {
		opts := simtest.CampaignOpts{
			Seeds: seeds, StartSeed: start, MatrixEvery: matrixEvery,
			SchedEvery: schedEvery,
			ReproDir:   reproDir, ShrinkBudget: shrinkBudget,
		}
		if verbose {
			opts.Logf = logf
		}
		return simtest.Campaign(opts)
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	per := (seeds + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > seeds {
			hi = seeds
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			opts := simtest.CampaignOpts{
				Seeds: hi - lo, StartSeed: start + int64(lo), MatrixEvery: matrixEvery,
				SchedEvery: schedEvery,
				ReproDir:   reproDir, ShrinkBudget: shrinkBudget,
			}
			if verbose {
				opts.Logf = logf
			}
			st := simtest.Campaign(opts)
			mu.Lock()
			total.Seeds += st.Seeds
			total.Runs += st.Runs
			for k, v := range st.Checked {
				total.Checked[k] += v
			}
			for k, v := range st.Skipped {
				total.Skipped[k] += v
			}
			total.Violations = append(total.Violations, st.Violations...)
			total.ReproPaths = append(total.ReproPaths, st.ReproPaths...)
			total.Errors = append(total.Errors, st.Errors...)
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	sort.Slice(total.Violations, func(i, j int) bool {
		return total.Violations[i].CampaignSeed < total.Violations[j].CampaignSeed
	})
	return total
}

var logMu sync.Mutex

func logf(format string, args ...any) {
	logMu.Lock()
	defer logMu.Unlock()
	fmt.Printf(format+"\n", args...)
}
