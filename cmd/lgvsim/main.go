// Command lgvsim runs a single configurable end-to-end mission on the
// simulated testbed and prints the paper's metrics: mission time split
// (Eq. 2a), per-component energy (Eq. 1a), the Table II cycle breakdown,
// network statistics and adaptation events.
//
// Usage examples:
//
//	lgvsim                                   # adaptive navigation in the lab
//	lgvsim -workload explore -deploy cloud -threads 12
//	lgvsim -deploy local -seed 7
//	lgvsim -deploy adaptive -goal ec -veltrace   # with a velocity trace
//	lgvsim -deploy adaptive -telemetry out.jsonl -postmortem
//	lgvsim -trace trace.json -spans spans.jsonl  # causal VDP trace
//	lgvsim -http :8080                           # live dashboard + inspection
//	lgvsim -store missions.lgvstore -http :8080  # persist + browse history
//	lgvsim -faults "wap:20-35;server:60-80"      # scripted disturbances
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lgvoffload"
)

func main() {
	workload := flag.String("workload", "nav", "workload: nav | explore | coverage")
	mapName := flag.String("map", "lab", "world: lab | deadzone (corridor through a WAP dead zone)")
	deploy := flag.String("deploy", "adaptive", "deployment: local | edge | cloud | adaptive")
	threads := flag.Int("threads", 8, "acceleration threads on the server")
	goal := flag.String("goal", "mct", "Algorithm 1 goal for adaptive mode: ec | mct")
	seed := flag.Int64("seed", 42, "simulation seed")
	maxTime := flag.Float64("maxtime", 1800, "simulated-time budget (s)")
	velTrace := flag.Bool("veltrace", false, "print the velocity/bandwidth trace")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON (load in Perfetto) to this file")
	spansOut := flag.String("spans", "", "write the raw span stream to this JSONL file")
	httpAddr := flag.String("http", "", `serve the inspection endpoint and fleet dashboard on this address (e.g. ":8080"); starts before the mission, so /live streams it, and keeps serving after`)
	telemetry := flag.String("telemetry", "", "write the mission event timeline to this JSONL file")
	postmortem := flag.Bool("postmortem", false, "print the telemetry post-mortem report")
	postmortemOut := flag.String("postmortem-out", "", "also write the post-mortem report into this directory, under a unique timestamped, mission-suffixed filename")
	storePath := flag.String("store", "", "record the mission into this embedded mission store file (created if absent; served by -http)")
	faultSpec := flag.String("faults", "", `fault schedule, e.g. "wap:10-20;server:30-45;burst:50-52:0.9"`)
	waps := flag.String("waps", "", `extra access points for multi-WAP roaming, e.g. "6,3;11,5" (x,y meters; the link hands off to the strongest AP with hysteresis)`)
	linkTrace := flag.String("linktrace", "", "replay a link-condition trace instead of the analytic model: a builtin name (office-roam | garage-deepfade | cafe-congestion) or a .lgvtrace file path")
	sloSpec := flag.String("slo", "", `live SLO rules, e.g. "vdp_p99<=0.5@30s,energy_rate~3@20s" ("default" for the stock set); breaches hit the timeline, /health and the flight recorder`)
	sloStrict := flag.Bool("slo-strict", false, "exit 3 if any SLO rule breached during the mission (CI gate; implies -slo default when -slo is unset)")
	flightRec := flag.Bool("flightrec", false, "attach the always-on flight recorder (bundles kept in memory; see -flight-dir)")
	flightDir := flag.String("flight-dir", "", "write flight bundles into this directory (implies -flightrec; created if absent)")
	flightVerify := flag.String("flight-verify", "", "verify a flight bundle file and exit (0 valid / 1 invalid)")
	promVerify := flag.String("prom-verify", "", "validate a Prometheus text-format file and exit (0 valid / 1 invalid)")
	serveMode := flag.Bool("serve", false, "run as the mission control plane: admit scenario specs over HTTP (POST /missions on -http, default :8080), multiplex them through a bounded scheduler, record into -store; SIGINT/SIGTERM drains")
	serveMaxRunning := flag.Int("serve-max-running", 4, "serve: missions stepped concurrently (the run ring)")
	serveMaxQueued := flag.Int("serve-max-queued", 1024, "serve: bounded admission queue; POST /missions returns 503 when full")
	serveQueueTimeout := flag.Duration("serve-queue-timeout", 0, "serve: evict missions queued longer than this (0 = never)")
	serveDrainTimeout := flag.Duration("serve-drain-timeout", time.Minute, "serve: how long a shutdown drain waits before force-canceling")
	flag.Parse()

	// Utility modes: structural verification of artifacts produced by a
	// previous run, for CI smoke tests. No mission is run.
	if *flightVerify != "" {
		data, err := os.ReadFile(*flightVerify)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flight-verify:", err)
			os.Exit(1)
		}
		info, err := lgvoffload.VerifyFlightBundle(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flight-verify: %s: %v\n", *flightVerify, err)
			os.Exit(1)
		}
		fmt.Printf("flight-verify: ok: reason=%s t=%.3f frames=%d events=%d\n",
			info.Reason, info.T, info.Frames, info.Events)
		return
	}
	if *promVerify != "" {
		data, err := os.ReadFile(*promVerify)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prom-verify:", err)
			os.Exit(1)
		}
		n, err := lgvoffload.ValidatePrometheusText(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prom-verify: %s: %v\n", *promVerify, err)
			os.Exit(1)
		}
		fmt.Printf("prom-verify: ok: %d samples\n", n)
		return
	}
	if *serveMode {
		runServe(*httpAddr, *storePath, serveFlags{
			maxRunning:   *serveMaxRunning,
			maxQueued:    *serveMaxQueued,
			queueTimeout: *serveQueueTimeout,
			drainTimeout: *serveDrainTimeout,
		})
		return
	}

	var d lgvoffload.Deployment
	g := lgvoffload.GoalMCT
	if *goal == "ec" {
		g = lgvoffload.GoalEC
	}
	switch *deploy {
	case "local":
		d = lgvoffload.DeployLocal()
	case "edge":
		d = lgvoffload.DeployEdge(*threads)
	case "cloud":
		d = lgvoffload.DeployCloud(*threads)
	case "adaptive":
		d = lgvoffload.DeployAdaptive(lgvoffload.HostEdge, *threads, g)
	default:
		fmt.Fprintf(os.Stderr, "unknown deployment %q\n", *deploy)
		os.Exit(2)
	}

	cfg := lgvoffload.MissionConfig{
		Map:         lgvoffload.LabMap(),
		Start:       lgvoffload.Pose(0.6, 0.6, 0),
		Goal:        lgvoffload.Point(11, 5),
		WAP:         lgvoffload.Point(6, 3),
		Deployment:  d,
		Seed:        *seed,
		MaxSimTime:  *maxTime,
		RecordTrace: *velTrace,
	}
	switch *mapName {
	case "lab":
	case "deadzone":
		// A 24 m corridor whose far end is out of WAP range: the adaptive
		// policy must shed remote nodes and finally retreat to local
		// compute mid-mission — the post-mortem's showcase.
		link := lgvoffload.DeadZoneLink(lgvoffload.Point(1, 1.5))
		cfg.Map = lgvoffload.EmptyRoomMap(24, 3, 0.1)
		cfg.Start = lgvoffload.Pose(1, 1.5, 0)
		cfg.Goal = lgvoffload.Point(22, 1.5)
		cfg.WAP = lgvoffload.Point(1, 1.5)
		cfg.LinkCfg = &link
	default:
		fmt.Fprintf(os.Stderr, "unknown map %q\n", *mapName)
		os.Exit(2)
	}
	switch *workload {
	case "explore":
		cfg.Workload = lgvoffload.ExplorationNoMap
	case "coverage":
		cfg.Workload = lgvoffload.CoverageWithMap
	}
	if *faultSpec != "" {
		sched, err := lgvoffload.ParseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faults:", err)
			os.Exit(2)
		}
		cfg.Faults = &sched
	}
	if *waps != "" {
		pts, err := parseWAPs(*waps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "waps:", err)
			os.Exit(2)
		}
		cfg.WAPs = pts
	}
	if *linkTrace != "" {
		tr, err := loadLinkTrace(*linkTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linktrace:", err)
			os.Exit(2)
		}
		cfg.LinkTrace = tr
	}

	var tel *lgvoffload.Telemetry
	if *telemetry != "" || *postmortem || *postmortemOut != "" || *httpAddr != "" ||
		*sloSpec != "" || *sloStrict || *flightRec || *flightDir != "" {
		// A long mission at 5 Hz emits several events per tick; a roomy
		// ring keeps the early adaptation decisions from being evicted.
		// The SLO engine and flight recorder ride on telemetry too: the
		// breach counter lives in its registry, and the recorder's event
		// ring is fed by its tee.
		tel = lgvoffload.NewTelemetry(1 << 16)
		cfg.Telemetry = tel
	}

	// Live SLO rules: -slo-strict without -slo means the stock set.
	spec := *sloSpec
	if spec == "" && *sloStrict {
		spec = "default"
	}
	var slo *lgvoffload.SLOEngine
	if spec != "" {
		rules, err := lgvoffload.ParseSLORules(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slo:", err)
			os.Exit(2)
		}
		slo = lgvoffload.NewSLOEngine(rules)
		cfg.SLO = slo
	}

	// Flight recorder: always-on black box; -flight-dir also writes each
	// bundle to disk.
	var fr *lgvoffload.FlightRecorder
	if *flightRec || *flightDir != "" {
		if *flightDir != "" {
			if err := os.MkdirAll(*flightDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "flight-dir:", err)
				os.Exit(1)
			}
		}
		fr = lgvoffload.NewFlightRecorder(lgvoffload.FlightConfig{Dir: *flightDir})
		cfg.FlightRec = fr
	}
	var tracer *lgvoffload.Tracer
	if *traceOut != "" || *spansOut != "" || *httpAddr != "" || *storePath != "" {
		tracer = lgvoffload.NewTracer(0)
		cfg.Tracer = tracer
	}

	// Mission store: open before the run so the dashboard can serve
	// history from previous runs while this mission records live.
	var st *lgvoffload.Store
	var rec *lgvoffload.MissionRecorder
	if *storePath != "" {
		var err error
		st, err = lgvoffload.OpenStore(*storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "store:", err)
			os.Exit(1)
		}
		rec, err = st.Begin(lgvoffload.MissionStart{
			Unix:       time.Now().Unix(),
			Label:      "lgvsim",
			Seed:       *seed,
			Workload:   cfg.Workload.String(),
			Deploy:     d.Name,
			Goal:       g.String(),
			Threads:    *threads,
			FaultSpec:  *faultSpec,
			MaxSimTime: *maxTime,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "store:", err)
			os.Exit(1)
		}
		cfg.Store = rec
	}

	// HTTP inspector: listen BEFORE the mission so /live streams the run
	// as it happens (and CI smoke tests can probe mid-mission).
	var hub *lgvoffload.LiveHub
	if *httpAddr != "" {
		hub = lgvoffload.NewLiveHub(0)
		tel.Tee(hub)
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "http:", err)
			os.Exit(1)
		}
		handler := lgvoffload.NewInspectorWith(lgvoffload.InspectorConfig{
			Telemetry: tel, Trace: tracer, Store: st, Live: hub, SLO: slo,
		})
		fmt.Printf("inspect:   serving http://%s/ (dashboard at /dash, live SSE at /live)\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, handler); err != nil {
				fmt.Fprintln(os.Stderr, "http:", err)
				os.Exit(1)
			}
		}()
	}

	res, err := lgvoffload.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mission error:", err)
		os.Exit(1)
	}
	if rec != nil {
		id := rec.ID()
		if err := rec.Finish(lgvoffload.StoreSummary(res)); err != nil {
			fmt.Fprintln(os.Stderr, "store:", err)
			os.Exit(1)
		}
		fmt.Printf("store:     mission %s recorded in %s\n", id, *storePath)
		if hub != nil {
			frame, _ := json.Marshal(map[string]any{
				"id": id, "success": res.Success, "reason": res.Reason,
			})
			hub.Publish("mission", frame)
		}
	}

	fmt.Printf("mission:   %s on %s (seed %d)\n", cfg.Workload, d.Name, *seed)
	fmt.Printf("outcome:   success=%v (%s)\n", res.Success, res.Reason)
	fmt.Printf("time:      total %.1f s = moving %.1f s + standby %.1f s (Eq. 2a)\n",
		res.TotalTime, res.MovingTime, res.StandbyTime)
	fmt.Printf("motion:    %.2f m traveled, avg velocity cap %.3f m/s\n", res.Distance, res.AvgMaxVel)
	if cfg.Workload == lgvoffload.ExplorationNoMap {
		fmt.Printf("explored:  %.0f%% of free space\n", res.Explored*100)
	}
	if cfg.Workload == lgvoffload.CoverageWithMap {
		fmt.Printf("covered:   %.0f%% of the floor\n", res.Covered*100)
	}
	fmt.Println("\nenergy (Eq. 1a):")
	for _, comp := range lgvoffload.EnergyComponents {
		fmt.Printf("  %-18s %8.1f J\n", comp, res.Energy[comp])
	}
	fmt.Printf("  %-18s %8.1f J\n", "TOTAL", res.TotalEnergy)
	fmt.Println("\nworkload cycles (Table II):")
	for _, row := range res.Cycles.Breakdown() {
		fmt.Printf("  %s\n", row)
	}
	fmt.Printf("\nnetwork:   %d msgs sent, %d dropped, %d overwritten, %.1f KB uplinked, %d placement switches\n",
		res.MsgsSent, res.MsgsDropped, res.MsgsOverwritten, res.BytesUplinked/1024, res.Switches)
	if len(cfg.WAPs) > 0 {
		fmt.Printf("roaming:   %d APs, %d handoffs", len(cfg.WAPs)+1, res.Handoffs)
		for i, t := range res.HandoffTimes {
			if i == 0 {
				fmt.Printf(" at t=")
			} else {
				fmt.Printf(", ")
			}
			fmt.Printf("%.1f s", t)
		}
		fmt.Println()
	}
	if *faultSpec != "" {
		fmt.Printf("faults:    %d injected, %d watchdog stops, %d failovers\n",
			res.FaultsInjected, res.WatchdogStops, res.Failovers)
	}
	if slo != nil {
		breaches := slo.Breaches()
		h := slo.Health()
		fmt.Printf("slo:       %d rules, %d breaches, healthy=%v\n",
			len(slo.Rules()), len(breaches), h.Healthy)
		for _, b := range breaches {
			fmt.Printf("  t=%7.1f  %-30s value %.4g > limit %.4g\n", b.T, b.Rule, b.Value, b.Limit)
		}
	}
	if fr != nil {
		bundles := fr.Bundles()
		fmt.Printf("flightrec: %d frames in ring, %d bundles dumped\n", fr.FrameCount(), len(bundles))
		for _, b := range bundles {
			loc := "in memory"
			if b.File != "" {
				loc = b.File
			}
			if b.WriteErr != "" {
				loc = "WRITE FAILED: " + b.WriteErr
			}
			fmt.Printf("  t=%7.1f  %-20s %4d frames, %4d events  %s\n",
				b.T, b.Reason, b.Frames, b.Events, loc)
		}
	}

	if *telemetry != "" {
		f, err := os.Create(*telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
			os.Exit(1)
		}
		if err := tel.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: %d events written to %s\n", len(tel.Events()), *telemetry)
	}
	if *postmortem {
		fmt.Println()
		if err := lgvoffload.WritePostMortem(os.Stdout, tel, res.TotalTime); err != nil {
			fmt.Fprintln(os.Stderr, "post-mortem:", err)
			os.Exit(1)
		}
	}
	if *postmortemOut != "" {
		path, err := writePostMortemFile(*postmortemOut, cfg.Workload.String(), d.Name, *seed, tel, res.TotalTime)
		if err != nil {
			fmt.Fprintln(os.Stderr, "post-mortem:", err)
			os.Exit(1)
		}
		fmt.Printf("post-mortem: written to %s\n", path)
	}

	if tracer != nil {
		writeFile := func(path string, write func(io.Writer) error, what string) {
			f, err := os.Create(path)
			if err == nil {
				err = write(f)
			}
			if err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
				os.Exit(1)
			}
		}
		if *traceOut != "" {
			writeFile(*traceOut, tracer.WriteChrome, "trace")
			fmt.Printf("trace:     %d spans written to %s (chrome://tracing or https://ui.perfetto.dev)\n",
				tracer.Len(), *traceOut)
		}
		if *spansOut != "" {
			writeFile(*spansOut, tracer.WriteJSONL, "spans")
			fmt.Printf("spans:     %d spans written to %s\n", tracer.Len(), *spansOut)
		}
		paths := lgvoffload.AnalyzeTicks(tracer.Spans())
		fmt.Println("\nVDP critical path (per-tick decomposition):")
		lgvoffload.WriteCritPathTable(os.Stdout, paths, 20)
	}

	if *velTrace {
		fmt.Println("\ntrace (t, vmax, vreal, bw, remote):")
		step := len(res.Trace) / 40
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(res.Trace); i += step {
			tp := res.Trace[i]
			fmt.Printf("  %6.1f  %.3f  %.3f  %5.1f  %v\n",
				tp.T, tp.MaxVel, tp.RealVel, tp.Bandwidth, tp.RemoteOn)
		}
	}

	// CI gate: a breached mission is a failed mission under -slo-strict.
	// Checked after all reporting so the breach list above still prints,
	// and before the -http wait so CI runs terminate.
	if *sloStrict && slo != nil && len(slo.Breaches()) > 0 {
		fmt.Fprintf(os.Stderr, "slo-strict: %d breaches — failing\n", len(slo.Breaches()))
		os.Exit(3)
	}

	if *httpAddr != "" {
		// Keep serving so the recorded mission, store history and live
		// stream stay inspectable; ^C to quit.
		fmt.Printf("\ninspect:   still serving (dashboard, metrics, timeline, trace, pprof); ^C to quit\n")
		select {}
	}
}

// parseWAPs parses a ";"-separated list of "x,y" access-point positions.
func parseWAPs(spec string) ([]lgvoffload.Vec2, error) {
	var out []lgvoffload.Vec2
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		xy := strings.Split(part, ",")
		if len(xy) != 2 {
			return nil, fmt.Errorf("%q: want \"x,y\"", part)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(xy[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", part, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(xy[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", part, err)
		}
		out = append(out, lgvoffload.Point(x, y))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no access points in %q", spec)
	}
	return out, nil
}

// loadLinkTrace resolves a builtin trace name, falling back to reading
// the argument as a .lgvtrace file path.
func loadLinkTrace(arg string) (*lgvoffload.LinkTrace, error) {
	if tr, err := lgvoffload.BuiltinTrace(arg); err == nil {
		return tr, nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a builtin trace (%s) nor a readable file: %v",
			arg, strings.Join(lgvoffload.BuiltinTraceNames(), " | "), err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(arg), ".lgvtrace")
	return lgvoffload.ParseLinkTrace(name, f)
}

// writePostMortemFile renders the post-mortem into dir under a unique
// timestamped, mission-suffixed name, so repeated runs never overwrite
// an earlier report. On a filename collision (two runs in the same
// second with identical parameters) a numeric suffix disambiguates.
func writePostMortemFile(dir, workload, deploy string, seed int64, tel *lgvoffload.Telemetry, missionTime float64) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	stamp := time.Now().UTC().Format("20060102-150405")
	base := fmt.Sprintf("postmortem-%s-%s-seed%d-%s", workload, deploy, seed, stamp)
	for i := 0; ; i++ {
		name := base + ".txt"
		if i > 0 {
			name = fmt.Sprintf("%s.%d.txt", base, i)
		}
		path := filepath.Join(dir, name)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			continue
		}
		if err != nil {
			return "", err
		}
		if err := lgvoffload.WritePostMortem(f, tel, missionTime); err != nil {
			f.Close()
			return "", err
		}
		return path, f.Close()
	}
}
