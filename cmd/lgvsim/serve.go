package main

// lgvsim -serve: the mission control plane. Instead of running one
// flag-configured mission, the process becomes a daemon that admits
// scenario specs over HTTP (POST /missions), multiplexes them through
// the internal/serve scheduler with a bounded run ring and admission
// queue, records every mission into the shared -store log, and serves
// the usual inspection endpoint (dashboard, /metrics, /live SSE)
// underneath the mission API. SIGINT/SIGTERM triggers a draining
// shutdown: admissions stop, queued and running missions finish (or
// are force-canceled at the drain timeout), and the store is flushed.
//
//	lgvsim -serve -http :8080 -store fleet.lgvstore
//	curl -d @scenario.json http://localhost:8080/missions
//	curl http://localhost:8080/missions/j1
//	curl http://localhost:8080/healthz

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lgvoffload/internal/obs"
	"lgvoffload/internal/serve"
	"lgvoffload/internal/simtest"
	"lgvoffload/internal/store"
)

type serveFlags struct {
	maxRunning   int
	maxQueued    int
	queueTimeout time.Duration
	drainTimeout time.Duration
}

func runServe(httpAddr, storePath string, sf serveFlags) {
	if httpAddr == "" {
		httpAddr = ":8080"
	}

	var st *store.Store
	if storePath != "" {
		var err error
		st, err = store.Open(storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "store:", err)
			os.Exit(1)
		}
	}

	tel := obs.NewTelemetry(1 << 16)
	hub := obs.NewLiveHub(0)
	tel.Tee(hub)

	sched := serve.New(serve.Config{
		Build:        simtest.BuildScenarioMission,
		MaxRunning:   sf.maxRunning,
		MaxQueued:    sf.maxQueued,
		QueueTimeout: sf.queueTimeout,
		Store:        st,
		Telemetry:    tel,
		Live:         hub,
	})
	inspector := obs.NewInspectorWith(obs.InspectorConfig{
		Telemetry: tel, Store: st, Live: hub,
	})
	handler := sched.Handler(inspector)

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "http:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: handler}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()

	fmt.Printf("serve:     mission control plane on http://%s/ (POST /missions, GET /healthz, dashboard at /dash)\n", ln.Addr())
	fmt.Printf("serve:     max-running=%d max-queued=%d", sf.maxRunning, sf.maxQueued)
	if sf.queueTimeout > 0 {
		fmt.Printf(" queue-timeout=%s", sf.queueTimeout)
	}
	if storePath != "" {
		fmt.Printf(" store=%s", storePath)
	}
	fmt.Println()

	// Periodic deadline sweep so queued-but-expired missions are shed
	// even when no admission or completion triggers a dispatch.
	sweepDone := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sched.SweepExpired()
			case <-sweepDone:
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("serve:     %s — draining (up to %s; signal again to abort)\n", s, sf.drainTimeout)
	case err := <-httpErr:
		fmt.Fprintln(os.Stderr, "http:", err)
		os.Exit(1)
	}
	close(sweepDone)

	// A second signal during the drain aborts it hard.
	done := make(chan error, 1)
	go func() { done <- sched.Shutdown(true, sf.drainTimeout) }()
	var drainErr error
	select {
	case drainErr = <-done:
	case <-sig:
		fmt.Println("serve:     second signal — canceling running missions")
		sched.CancelAll("operator abort")
		drainErr = <-done
	}
	srv.Close()

	stats := sched.Stats()
	fmt.Printf("serve:     drained: admitted=%d done=%d failed=%d canceled=%d evicted=%d rejected=%d\n",
		stats.Admitted, stats.Done, stats.Failed, stats.Canceled, stats.Evicted, stats.Rejected)
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "store:", err)
			os.Exit(1)
		}
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "serve:", drainErr)
		os.Exit(1)
	}
}
