// Command lgvbag records, inspects and replays sensor logs (bags) — the
// workflow the paper uses with the Intel Research Lab dataset: capture a
// drive once, then benchmark SLAM configurations against the identical
// stream.
//
//	lgvbag -record lab.bag -seed 7 -entries 300   # generate + save a drive
//	lgvbag -info lab.bag                          # topics, counts, duration
//	lgvbag -replay lab.bag -particles 30 -threads 8
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"lgvoffload/internal/bag"
	"lgvoffload/internal/core"
	"lgvoffload/internal/slam"
	"lgvoffload/internal/trace"
	"lgvoffload/internal/world"
)

func main() {
	record := flag.String("record", "", "generate a lab drive and save it to this bag file")
	info := flag.String("info", "", "print a bag's summary")
	replay := flag.String("replay", "", "replay a bag through SLAM")
	seed := flag.Int64("seed", 7, "generation seed (with -record)")
	entries := flag.Int("entries", 300, "dataset length (with -record)")
	particles := flag.Int("particles", 30, "SLAM particles (with -replay)")
	threads := flag.Int("threads", 1, "parallel scanMatch threads (with -replay)")
	flag.Parse()

	switch {
	case *record != "":
		doRecord(*record, *seed, *entries)
	case *info != "":
		doInfo(*info)
	case *replay != "":
		doReplay(*replay, *particles, *threads)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lgvbag:", err)
	os.Exit(1)
}

func doRecord(path string, seed int64, entries int) {
	ds := trace.LabDataset(seed, entries)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := ds.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d entries (%.1f m driven) to %s\n",
		ds.Len(), ds.PathLength(), path)
}

func doInfo(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := bag.ReadAll(f)
	if err != nil {
		fatal(err)
	}
	st := bag.Summarize(recs)
	fmt.Printf("%s: %d records over %.1f s\n", path, st.Records, st.Duration)
	for _, topic := range st.TopicNames() {
		fmt.Printf("  %-12s %6d msgs\n", topic, st.Topics[topic])
	}
}

func doReplay(path string, particles, threads int) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	// Bags store the stream, not the world; the lab map is the reference.
	ds, err := trace.Load(f, world.LabMap())
	if err != nil {
		fatal(err)
	}

	cfg := slam.DefaultConfig(ds.Map.Width, ds.Map.Height, ds.Map.Resolution, ds.Map.Origin)
	cfg.NumParticles = particles
	s := slam.New(cfg, rand.New(rand.NewSource(1)))
	s.SetInitialPose(ds.Start)

	start := time.Now()
	var matchOps int
	for _, e := range ds.Entries {
		var st slam.UpdateStats
		if threads > 1 {
			st = s.UpdateParallel(e.OdomDelta, e.Scan, threads, slam.Block)
		} else {
			st = s.Update(e.OdomDelta, e.Scan)
		}
		matchOps += st.MatchOps
	}
	wall := time.Since(start)

	// Final pose error against the recorded ground truth.
	truth := ds.Entries[len(ds.Entries)-1].TruePose
	est := s.BestPose()
	work := core.SlamWork(matchOps, 0, 0, 0)
	fmt.Printf("replayed %d scans, M=%d particles, %d threads\n", ds.Len(), particles, threads)
	fmt.Printf("wall time:        %.2f s (%.1f ms/update on this host)\n",
		wall.Seconds(), wall.Seconds()*1000/float64(ds.Len()))
	fmt.Printf("scanMatch probes: %d (%.2f Gcycles of Table II work)\n",
		matchOps, work.Total()/1e9)
	fmt.Printf("final pose error: %.3f m\n", est.Pos.Dist(truth.Pos))
}
