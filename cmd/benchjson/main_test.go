package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `
goos: linux
BenchmarkFig9Pipeline-8   	    1234	    987654.0 ns/op	    2048 B/op	      12 allocs/op
BenchmarkTickHot   	 5000000	       231.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem-16 	     100	   1000000 ns/op
PASS
`
	rs := parse(out)
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	if rs[0].Name != "BenchmarkFig9Pipeline" || rs[0].Iters != 1234 ||
		rs[0].NsPerOp != 987654.0 || rs[0].BPerOp != 2048 || rs[0].AllocsOp != 12 {
		t.Errorf("first result mismatch: %+v", rs[0])
	}
	if rs[1].Name != "BenchmarkTickHot" || rs[1].AllocsOp != 0 {
		t.Errorf("second result mismatch: %+v", rs[1])
	}
	if rs[2].Name != "BenchmarkNoMem" || rs[2].BPerOp != 0 {
		t.Errorf("benchmark without -benchmem should parse with zero mem stats: %+v", rs[2])
	}
}

func joinLines(entries []GateEntry) string {
	var lines []string
	for _, e := range entries {
		lines = append(lines, e.line())
	}
	return strings.Join(lines, "\n")
}

func TestGateCompare(t *testing.T) {
	ref := []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 10},
		{Name: "BenchmarkZeroAlloc", NsPerOp: 100, AllocsOp: 0},
		{Name: "BenchmarkGone", NsPerOp: 50, AllocsOp: 1},
	}

	t.Run("within tolerance", func(t *testing.T) {
		cur := []Result{
			{Name: "BenchmarkA", NsPerOp: 1040, AllocsOp: 10}, // +4% < 5%
			{Name: "BenchmarkZeroAlloc", NsPerOp: 104, AllocsOp: 0},
		}
		entries, regs := gateCompare(ref, cur, 0.05)
		if regs != 0 {
			t.Fatalf("regressions = %d, want 0; report:\n%s", regs, joinLines(entries))
		}
	})

	t.Run("ns regression fails", func(t *testing.T) {
		cur := []Result{{Name: "BenchmarkA", NsPerOp: 1100, AllocsOp: 10}} // +10%
		_, regs := gateCompare(ref, cur, 0.05)
		if regs != 1 {
			t.Fatalf("regressions = %d, want 1", regs)
		}
	})

	t.Run("alloc regression fails", func(t *testing.T) {
		cur := []Result{{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 13}} // +30%, past slack
		_, regs := gateCompare(ref, cur, 0.05)
		if regs != 1 {
			t.Fatalf("regressions = %d, want 1", regs)
		}
	})

	t.Run("small alloc jitter is tolerated", func(t *testing.T) {
		// +2 allocs on a small count is warm-up jitter, not a regression,
		// even though it is +20% relative.
		cur := []Result{{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 12}}
		_, regs := gateCompare(ref, cur, 0.05)
		if regs != 0 {
			t.Fatalf("regressions = %d, want 0", regs)
		}
	})

	t.Run("zero-alloc reference is strict", func(t *testing.T) {
		// tol cannot excuse going from 0 to any allocations.
		cur := []Result{{Name: "BenchmarkZeroAlloc", NsPerOp: 100, AllocsOp: 1}}
		_, regs := gateCompare(ref, cur, 10.0)
		if regs != 1 {
			t.Fatalf("regressions = %d, want 1", regs)
		}
	})

	t.Run("new and missing benchmarks never fail", func(t *testing.T) {
		cur := []Result{{Name: "BenchmarkBrandNew", NsPerOp: 99999, AllocsOp: 999}}
		entries, regs := gateCompare(ref, cur, 0.05)
		if regs != 0 {
			t.Fatalf("regressions = %d, want 0", regs)
		}
		joined := joinLines(entries)
		if !strings.Contains(joined, "new") || !strings.Contains(joined, "BenchmarkBrandNew") {
			t.Errorf("report missing 'new' entry:\n%s", joined)
		}
		if !strings.Contains(joined, "missing") || !strings.Contains(joined, "BenchmarkGone") {
			t.Errorf("report missing 'missing' entry:\n%s", joined)
		}
	})

	t.Run("faster is never a regression", func(t *testing.T) {
		cur := []Result{{Name: "BenchmarkA", NsPerOp: 500, AllocsOp: 5}}
		entries, regs := gateCompare(ref, cur, 0.05)
		if regs != 0 {
			t.Fatalf("regressions = %d, want 0", regs)
		}
		if entries[0].Ratio != 0.5 {
			t.Errorf("ratio = %v, want 0.5", entries[0].Ratio)
		}
		if entries[0].Verdict != "ok" {
			t.Errorf("verdict = %q, want ok", entries[0].Verdict)
		}
	})
}
