// Command benchjson runs the repo's key benchmarks and records the
// results as JSON, growing the benchmark trajectory the ROADMAP calls
// for. The output file keeps two sections: a pinned `baseline` (the
// numbers before an optimization PR) and `current` (the numbers after),
// so a reviewer can diff ns/op, B/op and allocs/op per benchmark without
// re-running anything.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_PR4.json                 # run + record current
//	go run ./cmd/benchjson -input old.txt -baseline -label pre # import a captured run as baseline
//	go run ./cmd/benchjson -bench 'Fig9|Fig10'                 # restrict the benchmark set
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measurement.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"b_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
}

// Run is one labelled benchmark sweep.
type Run struct {
	Label   string   `json:"label"`
	Results []Result `json:"results"`
}

// File is the on-disk layout.
type File struct {
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	Baseline  *Run   `json:"baseline,omitempty"`
	Current   *Run   `json:"current,omitempty"`
}

// benchLine matches `go test -bench` output with -benchmem, stripping
// the GOMAXPROCS suffix (`BenchmarkFoo-8`).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func parse(out string) []Result {
	var rs []Result
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var b, allocs int64
		if m[4] != "" {
			b, _ = strconv.ParseInt(m[4], 10, 64)
			allocs, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rs = append(rs, Result{Name: m[1], Iters: iters, NsPerOp: ns, BPerOp: b, AllocsOp: allocs})
	}
	return rs
}

func main() {
	var (
		out       = flag.String("out", "BENCH_PR4.json", "output JSON file")
		input     = flag.String("input", "", "parse an existing `go test -bench` output file instead of running")
		baseline  = flag.Bool("baseline", false, "record results into the baseline section instead of current")
		label     = flag.String("label", "", "label for the recorded run")
		benchRe   = flag.String("bench", ".", "benchmark regexp passed to go test")
		benchtime = flag.String("benchtime", "1s", "per-benchmark time")
		count     = flag.Int("count", 1, "runs per benchmark")
	)
	flag.Parse()

	var raw string
	if *input != "" {
		b, err := os.ReadFile(*input)
		if err != nil {
			fatal(err)
		}
		raw = string(b)
	} else {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", *benchRe, "-benchmem",
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count), ".")
		cmd.Stderr = os.Stderr
		b, err := cmd.Output()
		if err != nil {
			fatal(fmt.Errorf("go test -bench: %w", err))
		}
		raw = string(b)
	}
	results := parse(raw)
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed"))
	}

	// Merge into the existing file so the pinned section survives.
	f := &File{Benchtime: *benchtime, Count: *count}
	if b, err := os.ReadFile(*out); err == nil {
		_ = json.Unmarshal(b, f)
	}
	run := &Run{Label: *label, Results: results}
	if *baseline {
		if run.Label == "" {
			run.Label = "baseline"
		}
		f.Baseline = run
	} else {
		if run.Label == "" {
			run.Label = "current"
		}
		f.Current = run
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(results), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
