// Command benchjson runs the repo's key benchmarks and records the
// results as JSON, growing the benchmark trajectory the ROADMAP calls
// for. The output file keeps two sections: a pinned `baseline` (the
// numbers before an optimization PR) and `current` (the numbers after),
// so a reviewer can diff ns/op, B/op and allocs/op per benchmark without
// re-running anything.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_PR9.json                 # run + record current
//	go run ./cmd/benchjson -input old.txt -baseline -label pre # import a captured run as baseline
//	go run ./cmd/benchjson -bench 'Fig9|Fig10'                 # restrict the benchmark set
//	go run ./cmd/benchjson -gate BENCH_PR9.json -tol 0.05      # regression gate vs committed numbers
//
// Gate mode (`make bench-gate`) re-runs the benchmarks and compares
// them against the committed reference file instead of rewriting it:
// any benchmark whose ns/op or allocs/op regresses by more than -tol
// fails the gate (exit 1). Benchmarks that only exist on one side are
// reported but never fail — the gate polices drift, not coverage.
// `-report file.json` additionally writes the comparison as JSON (one
// entry per benchmark with reference and measured numbers), which CI
// uploads as an artifact on every run, pass or fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measurement.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"b_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
}

// Run is one labelled benchmark sweep.
type Run struct {
	Label   string   `json:"label"`
	Results []Result `json:"results"`
}

// File is the on-disk layout.
type File struct {
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	Baseline  *Run   `json:"baseline,omitempty"`
	Current   *Run   `json:"current,omitempty"`
}

// benchLine matches `go test -bench` output with -benchmem, stripping
// the GOMAXPROCS suffix (`BenchmarkFoo-8`).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func parse(out string) []Result {
	var rs []Result
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var b, allocs int64
		if m[4] != "" {
			b, _ = strconv.ParseInt(m[4], 10, 64)
			allocs, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rs = append(rs, Result{Name: m[1], Iters: iters, NsPerOp: ns, BPerOp: b, AllocsOp: allocs})
	}
	return rs
}

func main() {
	var (
		out       = flag.String("out", "BENCH_PR9.json", "output JSON file")
		input     = flag.String("input", "", "parse an existing `go test -bench` output file instead of running")
		baseline  = flag.Bool("baseline", false, "record results into the baseline section instead of current")
		label     = flag.String("label", "", "label for the recorded run")
		benchRe   = flag.String("bench", ".", "benchmark regexp passed to go test")
		benchtime = flag.String("benchtime", "1s", "per-benchmark time")
		count     = flag.Int("count", 1, "runs per benchmark")
		gate      = flag.String("gate", "", "compare against this committed JSON instead of writing -out; exit 1 on regression")
		tol       = flag.Float64("tol", 0.05, "gate: allowed relative regression in ns/op and allocs/op")
		reportOut = flag.String("report", "", "gate: also write the comparison as JSON to this file")
	)
	flag.Parse()

	var raw string
	if *input != "" {
		b, err := os.ReadFile(*input)
		if err != nil {
			fatal(err)
		}
		raw = string(b)
	} else {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", *benchRe, "-benchmem",
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count), ".")
		cmd.Stderr = os.Stderr
		b, err := cmd.Output()
		if err != nil {
			fatal(fmt.Errorf("go test -bench: %w", err))
		}
		raw = string(b)
	}
	results := parse(raw)
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed"))
	}

	if *gate != "" {
		b, err := os.ReadFile(*gate)
		if err != nil {
			fatal(err)
		}
		var ref File
		if err := json.Unmarshal(b, &ref); err != nil {
			fatal(fmt.Errorf("%s: %w", *gate, err))
		}
		refRun := ref.Current
		if refRun == nil {
			refRun = ref.Baseline
		}
		if refRun == nil {
			fatal(fmt.Errorf("%s has neither current nor baseline results", *gate))
		}
		entries, regressions := gateCompare(refRun.Results, results, *tol)
		for _, e := range entries {
			fmt.Println(e.line())
		}
		if *reportOut != "" {
			rep := GateReport{Reference: *gate, RefLabel: refRun.Label, Tol: *tol,
				Regressions: regressions, Entries: entries}
			enc, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*reportOut, append(enc, '\n'), 0o644); err != nil {
				fatal(err)
			}
		}
		if regressions > 0 {
			fmt.Printf("bench-gate: FAIL — %d benchmark(s) regressed beyond %.0f%% vs %s\n",
				regressions, 100**tol, *gate)
			os.Exit(1)
		}
		fmt.Printf("bench-gate: ok — %d benchmark(s) within %.0f%% of %s\n",
			len(results), 100**tol, *gate)
		return
	}

	// Merge into the existing file so the pinned section survives.
	f := &File{Benchtime: *benchtime, Count: *count}
	if b, err := os.ReadFile(*out); err == nil {
		_ = json.Unmarshal(b, f)
	}
	run := &Run{Label: *label, Results: results}
	if *baseline {
		if run.Label == "" {
			run.Label = "baseline"
		}
		f.Baseline = run
	} else {
		if run.Label == "" {
			run.Label = "current"
		}
		f.Current = run
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(results), *out)
}

// GateEntry is one benchmark's reference-vs-measured comparison.
type GateEntry struct {
	Name      string  `json:"name"`
	Verdict   string  `json:"verdict"` // ok | REGRESSED | new | missing
	RefNs     float64 `json:"ref_ns_per_op,omitempty"`
	CurNs     float64 `json:"cur_ns_per_op,omitempty"`
	Ratio     float64 `json:"ratio,omitempty"` // cur/ref ns per op
	RefAllocs int64   `json:"ref_allocs_per_op"`
	CurAllocs int64   `json:"cur_allocs_per_op"`
}

// GateReport is the machine-readable comparison gate mode emits via
// -report, uploaded as a CI artifact so reviewers can inspect the
// numbers without replaying the job.
type GateReport struct {
	Reference   string      `json:"reference"`
	RefLabel    string      `json:"ref_label,omitempty"`
	Tol         float64     `json:"tol"`
	Regressions int         `json:"regressions"`
	Entries     []GateEntry `json:"entries"`
}

func (e GateEntry) line() string {
	switch e.Verdict {
	case "new":
		return fmt.Sprintf("  new      %-40s %12.1f ns/op (no reference)", e.Name, e.CurNs)
	case "missing":
		return fmt.Sprintf("  missing  %-40s (in reference, not in this run)", e.Name)
	}
	return fmt.Sprintf("  %-8s %-40s %12.1f -> %12.1f ns/op  %3d -> %3d allocs/op",
		e.Verdict, e.Name, e.RefNs, e.CurNs, e.RefAllocs, e.CurAllocs)
}

// gateCompare checks cur against ref benchmark-by-benchmark. A
// benchmark regresses when its ns/op or allocs/op exceeds the reference
// by more than tol (relative); the alloc check gets two ops of absolute
// slack on top, so benchmarks measured at tens of allocs don't fail on
// ±1 pool-warm-up jitter that a relative bound misreads as 10%. A
// zero-alloc reference stays exact: any nonzero alloc count against it
// is a regression, whatever tol says. Benchmarks present on only one
// side are reported but don't count.
func gateCompare(ref, cur []Result, tol float64) (entries []GateEntry, regressions int) {
	byName := make(map[string]Result, len(ref))
	for _, r := range ref {
		byName[r.Name] = r
	}
	seen := make(map[string]bool, len(cur))
	for _, c := range cur {
		seen[c.Name] = true
		r, ok := byName[c.Name]
		if !ok {
			entries = append(entries, GateEntry{Name: c.Name, Verdict: "new",
				CurNs: c.NsPerOp, CurAllocs: c.AllocsOp})
			continue
		}
		bad := false
		if r.NsPerOp > 0 && c.NsPerOp > r.NsPerOp*(1+tol) {
			bad = true
		}
		switch {
		case r.AllocsOp == 0 && c.AllocsOp > 0:
			bad = true
		case r.AllocsOp > 0 && float64(c.AllocsOp) > float64(r.AllocsOp)*(1+tol)+2:
			bad = true
		}
		verdict := "ok"
		if bad {
			verdict = "REGRESSED"
			regressions++
		}
		e := GateEntry{Name: c.Name, Verdict: verdict,
			RefNs: r.NsPerOp, CurNs: c.NsPerOp,
			RefAllocs: r.AllocsOp, CurAllocs: c.AllocsOp}
		if r.NsPerOp > 0 {
			e.Ratio = c.NsPerOp / r.NsPerOp
		}
		entries = append(entries, e)
	}
	for _, r := range ref {
		if !seen[r.Name] {
			entries = append(entries, GateEntry{Name: r.Name, Verdict: "missing",
				RefNs: r.NsPerOp, RefAllocs: r.AllocsOp})
		}
	}
	return entries, regressions
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
