// Command reproduce regenerates the tables and figures of the paper's
// evaluation section (§VIII). Each experiment prints a human-readable
// report comparing measured shapes against the published numbers.
//
// Usage:
//
//	reproduce -exp all            # every table and figure (minutes)
//	reproduce -exp fig9           # one experiment
//	reproduce -exp fig13 -quick   # shrunken workload (seconds)
//	reproduce -list               # list experiment IDs
//	reproduce -exp all -figdir out/   # also write SVG figures
//	reproduce -exp chaos -store runs.lgvstore  # record every mission
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lgvoffload/internal/bench"
	"lgvoffload/internal/store"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID or 'all'")
	quick := flag.Bool("quick", false, "shrink workloads (seconds instead of minutes)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	figdir := flag.String("figdir", "", "also render SVG figures into this directory")
	storePath := flag.String("store", "", "record every mission the campaign runs into this mission store file (query with cmd/lgvstore)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *storePath != "" {
		st, err := store.Open(*storePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "store: %v\n", err)
			os.Exit(1)
		}
		bench.RecordInto(st, "reproduce/"+*exp)
		defer func() {
			bench.RecordInto(nil, "")
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "store: %v\n", err)
			}
		}()
	}

	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.All()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %v\n", *exp, bench.IDs())
			os.Exit(2)
		}
		todo = []bench.Experiment{e}
	}

	if *figdir != "" {
		start := time.Now()
		if err := bench.WriteFigures(*figdir, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "figures failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[figures written to %s in %.1fs]\n", *figdir, time.Since(start).Seconds())
	}

	for _, e := range todo {
		start := time.Now()
		fmt.Printf("\n################ %s — %s\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s done in %.1fs]\n", e.ID, time.Since(start).Seconds())
	}
}
