// Command advhunt runs the fault-schedule adversary: a seeded
// hill-climber over internal/faults schedules that searches for the
// windows the adaptive offloading stack handles worst, scored by
// end-to-end mission energy or completion time. It reports the worst
// schedule found against an equal-budget random baseline, verifies the
// worst schedule replays bit-identically, and can write it into the
// repro corpus as an adversarial-replay regression scenario.
//
// Exit status: 0 search ok (replay identical, gain ≥ -min-gain),
// 1 replay mismatch or gain below threshold, 2 usage or setup error.
//
//	advhunt -seed 1 -evals 40 -metric energy
//	advhunt -scenario repro.json -metric time -v
//	advhunt -min-gain 0.10 -repros internal/simtest/testdata/repros
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lgvoffload/internal/obs"
	"lgvoffload/internal/simtest"
)

func main() {
	seed := flag.Int64("seed", 1, "mission seed for the built-in base scenario")
	scenario := flag.String("scenario", "", "JSON scenario file to attack instead of the built-in base")
	searchSeed := flag.Int64("search-seed", 1, "rng seed for the adversarial search itself")
	evals := flag.Int("evals", 40, "mission evaluations for the hill-climb (the random baseline gets the same)")
	metric := flag.String("metric", "energy", "damage metric: energy (total J) or time (mission s)")
	budget := flag.Float64("budget", 0.25, "fault budget: max total window seconds as a fraction of MaxSimTime")
	maxWindows := flag.Int("max-windows", 4, "max fault windows per schedule")
	minGain := flag.Float64("min-gain", 0, "fail (exit 1) unless the adversary beats the random baseline by this relative margin")
	reproDir := flag.String("repros", "", "directory to write the worst schedule as an adversarial-replay repro (empty = don't write)")
	flightDir := flag.String("flight-dir", "", "re-run the worst schedule with the flight recorder attached and dump its last-seconds bundle here (empty = don't)")
	jsonOut := flag.String("json", "", "write the full search result to this file")
	verbose := flag.Bool("v", false, "log every accepted improvement")
	flag.Parse()
	if flag.NArg() != 0 || (*metric != "energy" && *metric != "time") {
		flag.Usage()
		os.Exit(2)
	}

	base := simtest.DefaultAdversaryBase(*seed)
	if *scenario != "" {
		b, err := os.ReadFile(*scenario)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(b, &base); err != nil {
			fatal(fmt.Errorf("%s: %w", *scenario, err))
		}
	}

	opts := simtest.AdversaryOpts{
		Seed: *searchSeed, Evals: *evals, Metric: *metric,
		BudgetFrac: *budget, MaxWindows: *maxWindows,
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	res, err := simtest.FindWorstSchedule(base, opts)
	if err != nil {
		fatal(err)
	}

	unit := "J"
	if *metric == "time" {
		unit = "s"
	}
	fmt.Printf("advhunt: %d evals on %s\n", res.Evals, res.Base.Label())
	fmt.Printf("  base (no faults):    %10.1f %s\n", res.BaseScore, unit)
	fmt.Printf("  random best:         %10.1f %s  %q\n", res.RandomBestScore, unit, res.RandomBest.Faults)
	fmt.Printf("  adversarial worst:   %10.1f %s  %q\n", res.WorstScore, unit, res.Worst.Faults)
	fmt.Printf("  gain over random: %+.1f%%  (%d improvements, %d shrink steps)\n",
		100*res.Gain(), res.Improvements, res.ShrinkSteps)

	if *jsonOut != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fatal(err)
		}
	}
	if *reproDir != "" && res.Worst.Adversarial {
		r := simtest.Repro{
			Invariant: "adversarial-replay",
			Error: fmt.Sprintf("worst-found schedule: %s %.1f %s vs random best %.1f %s (search seed %d, %d evals)",
				*metric, res.WorstScore, unit, res.RandomBestScore, unit, *searchSeed, *evals),
			CampaignSeed: res.Worst.Seed,
			ShrinkSteps:  res.ShrinkSteps,
			Scenario:     res.Worst,
		}
		path, err := simtest.SaveRepro(*reproDir, r)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  repro: %s\n", path)
	}
	if *flightDir != "" {
		// Black-box forensics for the worst-found schedule: replay it once
		// more with the flight recorder attached and freeze the closing
		// seconds, so the schedule ships with the per-tick frames (VDP,
		// energy, safety counters, link state) that explain its damage.
		fr := obs.NewFlightRecorder(obs.FlightConfig{Dir: *flightDir})
		if _, err := simtest.RunScenarioObserved(res.Worst, fr, nil); err != nil {
			fatal(err)
		}
		b := fr.ForceDump("advhunt", fmt.Sprintf("worst schedule, search seed %d", *searchSeed), fr.LastTime())
		if b == nil {
			fatal(fmt.Errorf("flight dump of worst schedule produced no bundle"))
		}
		if b.WriteErr != "" {
			fatal(fmt.Errorf("flight dump: %s", b.WriteErr))
		}
		fmt.Printf("  flight bundle: %s (%d frames, %d events)\n", b.File, b.Frames, b.Events)
	}

	if !res.ReplayIdentical {
		fmt.Println("advhunt: FAIL — worst schedule did not replay bit-identically")
		os.Exit(1)
	}
	if res.Gain() < *minGain {
		fmt.Printf("advhunt: FAIL — gain %+.1f%% below required %+.1f%%\n", 100*res.Gain(), 100**minGain)
		os.Exit(1)
	}
	fmt.Println("advhunt: ok — worst schedule replays bit-identically")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "advhunt:", err)
	os.Exit(2)
}
