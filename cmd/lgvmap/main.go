// Command lgvmap renders the built-in worlds — and optionally a driven
// mission's trajectory — as SVG files or ASCII in the terminal.
//
//	lgvmap -world lab                        # ASCII view
//	lgvmap -world maze -svg maze.svg         # SVG file
//	lgvmap -world office -mission -svg m.svg # mission path overlay
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"lgvoffload"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/viz"
	"lgvoffload/internal/world"
)

func main() {
	worldName := flag.String("world", "lab", "world: lab | course | maze | office | clutter")
	svgPath := flag.String("svg", "", "write SVG here instead of ASCII to stdout")
	mission := flag.Bool("mission", false, "drive a mission and overlay its path")
	seed := flag.Int64("seed", 7, "world/mission seed")
	cols := flag.Int("cols", 120, "ASCII width")
	flag.Parse()

	m, start, goal := buildWorld(*worldName, *seed)

	var path []geom.Vec2
	robot := start.Pos
	if *mission {
		res, err := lgvoffload.Run(lgvoffload.MissionConfig{
			Workload:    lgvoffload.NavigationWithMap,
			Map:         m,
			Start:       start,
			Goal:        goal,
			Deployment:  lgvoffload.DeployEdge(8),
			Seed:        *seed,
			MaxSimTime:  900,
			RecordTrace: true,
		})
		if err != nil {
			fatal(err)
		}
		for _, tp := range res.Trace {
			path = append(path, geom.V(tp.X, tp.Y))
		}
		if len(path) > 0 {
			robot = path[len(path)-1]
		}
		fmt.Fprintf(os.Stderr, "mission: success=%v (%s) in %.1f s\n",
			res.Success, res.Reason, res.TotalTime)
	}

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := viz.MapSVG(f, m, path); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svgPath)
		return
	}
	if err := viz.MapASCII(os.Stdout, m, robot, path, *cols); err != nil {
		fatal(err)
	}
}

func buildWorld(name string, seed int64) (*grid.Map, geom.Pose, geom.Vec2) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "lab":
		return world.LabMap(), geom.P(0.6, 0.6, 0), geom.V(11, 5)
	case "course":
		return world.ObstacleCourseMap(), geom.P(0.6, 3, 0), geom.V(13.5, 0.8)
	case "maze":
		m := world.MazeMap(6, 4, 0.9, 0.2, 0.05, rng)
		start := world.MazeCellCenter(0, 0, 0.9, 0.2)
		goal := world.MazeCellCenter(5, 3, 0.9, 0.2)
		return m, geom.P(start.X, start.Y, 0), goal
	case "office":
		m := world.OfficeMap(4, 2.0, 1.8, 1.2, 0.05, rng)
		y := world.OfficeCorridorY(1.8, 1.2)
		return m, geom.P(0.6, y, 0), world.OfficeRoomCenter(3, 1, 2.0, 1.8, 1.2)
	case "clutter":
		m := world.RandomClutterMap(8, 6, 0.05, 8, rng)
		return m, geom.P(0.7, 0.7, 0), geom.V(7.3, 5.3)
	default:
		fatal(fmt.Errorf("unknown world %q", name))
		return nil, geom.Pose{}, geom.Vec2{}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lgvmap:", err)
	os.Exit(1)
}
